package blockio

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

// newVecSet builds a Set over fresh untimed disks sized for the layout.
func newVecSet(t *testing.T, l Layout) (*Set, []*device.Disk) {
	t.Helper()
	disks := make([]*device.Disk, l.Devices())
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     fmt.Sprintf("d%d", i),
			Geometry: device.Geometry{BlockSize: 64, BlocksPerCyl: 8, Cylinders: 32},
		})
	}
	store, err := NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet(store, l, make([]int64, l.Devices()))
	if err != nil {
		t.Fatal(err)
	}
	return set, disks
}

// TestMapVecUnit1Coalescing is the declustering case extent I/O cannot
// serve: under unit-1 striping a contiguous logical range decomposes into
// one gather run per device, not one request per block.
func TestMapVecUnit1Coalescing(t *testing.T) {
	set, _ := newVecSet(t, NewStriped(4, 1))
	bs := int64(set.BlockSize())
	runs, err := set.MapVec(Vec{{Block: 0, N: 32, BufOff: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("unit-1 vec of 32 blocks: %d runs, want 4 (one per device): %+v", len(runs), runs)
	}
	for dev, r := range runs {
		if r.Dev != dev || r.PBlock != 0 || r.N != 8 {
			t.Fatalf("run %d = %+v, want dev %d pblock 0 n 8", dev, r, dev)
		}
		if len(r.Segs) != 8 {
			t.Fatalf("run %d: %d segs, want 8 one-block strides", dev, len(r.Segs))
		}
		for i, sg := range r.Segs {
			if want := (int64(dev) + int64(i)*4) * bs; sg.BufOff != want || sg.Blocks != 1 {
				t.Fatalf("run %d seg %d = %+v, want bufOff %d blocks 1", dev, i, sg, want)
			}
		}
	}
}

// TestMapVecMergesAcrossSegments checks listio-style merging: pieces from
// different descriptor segments that land physically adjacent coalesce,
// and buffer-adjacent segs collapse.
func TestMapVecMergesAcrossSegments(t *testing.T) {
	set, _ := newVecSet(t, NewStriped(2, 1))
	bs := int64(set.BlockSize())
	// Logical blocks 0, 2, 4 all live on device 0 at pblocks 0, 1, 2:
	// physically adjacent, logically strided, buffer contiguous.
	runs, err := set.MapVec(Vec{
		{Block: 0, N: 1, BufOff: 0},
		{Block: 2, N: 1, BufOff: bs},
		{Block: 4, N: 1, BufOff: 2 * bs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("%d runs, want 1 merged gather run: %+v", len(runs), runs)
	}
	r := runs[0]
	if r.Dev != 0 || r.PBlock != 0 || r.N != 3 {
		t.Fatalf("run = %+v, want dev 0 pblock 0 n 3", r)
	}
	if len(r.Segs) != 1 || r.Segs[0] != (Seg{BufOff: 0, Blocks: 3}) {
		t.Fatalf("segs = %+v, want one 3-block seg at offset 0", r.Segs)
	}
}

// TestVecValidation exercises the descriptor error cases, including the
// overlapping-segment rejections.
func TestVecValidation(t *testing.T) {
	set, _ := newVecSet(t, NewStriped(2, 1))
	bs := int64(set.BlockSize())
	buf := make([]byte, 8*bs)
	ctx := sim.NewWall()
	cases := []struct {
		name string
		vec  Vec
		want string
	}{
		{"logical overlap", Vec{{Block: 0, N: 4, BufOff: 0}, {Block: 3, N: 2, BufOff: 4 * bs}}, "overlap in logical blocks"},
		{"buffer overlap", Vec{{Block: 0, N: 2, BufOff: 0}, {Block: 4, N: 2, BufOff: bs}}, "overlap in the buffer"},
		{"misaligned", Vec{{Block: 0, N: 1, BufOff: 7}}, "not aligned"},
		{"negative run", Vec{{Block: 0, N: -1, BufOff: 0}}, "blocks"},
		{"beyond buffer", Vec{{Block: 0, N: 9, BufOff: 0}}, "exceed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := set.ReadVec(ctx, tc.vec, buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ReadVec = %v, want error containing %q", err, tc.want)
			}
			if err := set.WriteVec(ctx, tc.vec, buf); err == nil {
				t.Fatalf("WriteVec accepted invalid vec %v", tc.vec)
			}
		})
	}
	// Zero-length segments and an empty vec are fine.
	if err := set.ReadVec(ctx, Vec{{Block: 0, N: 0, BufOff: -9999}}, buf); err != nil {
		t.Fatalf("zero-length segment rejected: %v", err)
	}
	if err := set.WriteVec(ctx, nil, nil); err != nil {
		t.Fatalf("empty vec rejected: %v", err)
	}
}

// randomVec builds a deterministic random descriptor over [0, total):
// disjoint logical ranges in shuffled order with shuffled buffer slots.
func randomVec(rng *rand.Rand, total, bs int64) (Vec, int64) {
	var ranges [][2]int64
	for b := int64(0); b < total; {
		n := 1 + rng.Int63n(5)
		if b+n > total {
			n = total - b
		}
		if rng.Intn(3) > 0 { // leave gaps sometimes
			ranges = append(ranges, [2]int64{b, n})
		}
		b += n + rng.Int63n(3)
	}
	var blocks int64
	for _, r := range ranges {
		blocks += r[1]
	}
	offs := make([]int64, len(ranges))
	var off int64
	for i, r := range ranges {
		offs[i] = off
		off += r[1] * bs
	}
	rng.Shuffle(len(ranges), func(i, j int) {
		ranges[i], ranges[j] = ranges[j], ranges[i]
		offs[i], offs[j] = offs[j], offs[i]
	})
	vec := make(Vec, len(ranges))
	for i, r := range ranges {
		vec[i] = VecSeg{Block: r[0], N: r[1], BufOff: offs[i]}
	}
	return vec, blocks * bs
}

// TestVecEquivalence checks ReadVec/WriteVec against per-block loops for
// random descriptors over every layout family.
func TestVecEquivalence(t *testing.T) {
	for _, tc := range testLayouts(t) {
		t.Run(tc.name, func(t *testing.T) {
			set, _ := newVecSet(t, tc.layout)
			bs := int64(set.BlockSize())
			ctx := sim.NewWall()
			rng := rand.New(rand.NewSource(7))
			// Seed every block with a distinct pattern.
			blk := make([]byte, bs)
			for b := int64(0); b < tc.total; b++ {
				for i := range blk {
					blk[i] = byte(b*31 + int64(i))
				}
				if err := set.WriteBlock(ctx, b, blk); err != nil {
					t.Fatal(err)
				}
			}
			for trial := 0; trial < 20; trial++ {
				vec, bufLen := randomVec(rng, tc.total, bs)
				got := make([]byte, bufLen)
				if err := set.ReadVec(ctx, vec, got); err != nil {
					t.Fatalf("trial %d: ReadVec: %v", trial, err)
				}
				want := make([]byte, bufLen)
				for _, sg := range vec {
					for i := int64(0); i < sg.N; i++ {
						if err := set.ReadBlock(ctx, sg.Block+i, want[sg.BufOff+i*bs:sg.BufOff+(i+1)*bs]); err != nil {
							t.Fatal(err)
						}
					}
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("trial %d: ReadVec differs from per-block loop (vec %v)", trial, vec)
				}
				// Write fresh data through the vec, verify per block.
				src := make([]byte, bufLen)
				rng.Read(src)
				if err := set.WriteVec(ctx, vec, src); err != nil {
					t.Fatalf("trial %d: WriteVec: %v", trial, err)
				}
				rb := make([]byte, bs)
				for _, sg := range vec {
					for i := int64(0); i < sg.N; i++ {
						if err := set.ReadBlock(ctx, sg.Block+i, rb); err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(rb, src[sg.BufOff+i*bs:sg.BufOff+(i+1)*bs]) {
							t.Fatalf("trial %d: WriteVec block %d mismatch", trial, sg.Block+i)
						}
					}
				}
			}
		})
	}
}

// TestVecRequestCount verifies the modeled win at the store level: a
// 32-block unit-1 declustered transfer is 4 device requests vectored
// (one gather run per device) versus 32 per-block.
func TestVecRequestCount(t *testing.T) {
	set, disks := newVecSet(t, NewStriped(4, 1))
	bs := int64(set.BlockSize())
	ctx := sim.NewWall()
	buf := make([]byte, 32*bs)
	if err := set.WriteVec(ctx, Vec{{Block: 0, N: 32}}, buf); err != nil {
		t.Fatal(err)
	}
	for _, d := range disks {
		d.ResetStats()
	}
	if err := set.ReadVec(ctx, Vec{{Block: 0, N: 32}}, buf); err != nil {
		t.Fatal(err)
	}
	var vecReqs int64
	for _, d := range disks {
		vecReqs += d.Stats().Requests()
	}
	if vecReqs != 4 {
		t.Fatalf("vectored unit-1 transfer issued %d requests, want 4", vecReqs)
	}
	for _, d := range disks {
		d.ResetStats()
	}
	for b := int64(0); b < 32; b++ {
		if err := set.ReadBlock(ctx, b, buf[:bs]); err != nil {
			t.Fatal(err)
		}
	}
	var blockReqs int64
	for _, d := range disks {
		blockReqs += d.Stats().Requests()
	}
	if blockReqs != 32 {
		t.Fatalf("per-block transfer issued %d requests, want 32", blockReqs)
	}
}
