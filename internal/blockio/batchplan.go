// Windowed batch plans: a cross-file batch mapped, validated, sorted
// and merged ONCE, then issuable over sub-ranges ("windows") of its
// buffer space without re-planning.
//
// A pipelined collective cuts each aggregator's file domain into chunks
// and accesses one chunk while exchanging the next. Re-running the full
// BatchVec machinery per chunk would re-map, re-sort and re-merge the
// same pieces every round; a BatchPlan instead does that work once, with
// the chunk boundaries known up front: pieces are split at the cut
// offsets, merged only within their window, and bucketed per window, so
// issuing chunk k is a plain walk of its precomputed gather runs. The
// plan is buffer-less — items' Buf fields are ignored — because the
// windows are staged through bounded buffers that exist only while their
// chunk is in flight; the staging buffer and its base offset are bound
// at issue time.

package blockio

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// BatchPlan is a prepared cross-file batch split into issue windows.
// Build one with BatchVec.Plan; issue windows with ReadWindow and
// WriteWindow. A plan is immutable and may be issued any number of
// times, in any window order, concurrently under an engine.
type BatchPlan struct {
	store Store
	bs    int64
	wins  [][]planRun
}

// planRun is one merged physically contiguous gather run of a window.
// Segs hold absolute buffer-space offsets; they are rebased onto the
// caller's staging buffer at issue time.
type planRun struct {
	dev  int
	pb   int64
	n    int64
	segs []Seg
}

// Plan validates and maps the batch once, splitting its physical pieces
// at the given buffer-space offsets so sub-ranges of the plan can be
// issued independently without re-sorting or re-merging. cuts must be
// ascending, block-aligned byte offsets into the items' shared buffer
// space; window w covers the bytes [cuts[w-1], cuts[w]) (window 0 starts
// at 0, the final window is unbounded), and pieces merge only within
// their window. Item Buf fields are ignored: all items' segment offsets
// must address one shared buffer space, supplied per window at issue
// time. An empty cuts list yields a single window equivalent to the
// plain batch.
func (b BatchVec) Plan(cuts []int64) (*BatchPlan, error) {
	if len(b) == 0 {
		return &BatchPlan{wins: make([][]planRun, len(cuts)+1)}, nil
	}
	if b[0].Set == nil {
		return nil, fmt.Errorf("blockio: Plan item 0 has no Set")
	}
	store := b[0].Set.store
	bs := int64(store.BlockSize())
	for i, c := range cuts {
		if c <= 0 || c%bs != 0 {
			return nil, fmt.Errorf("blockio: Plan cut %d at %d not a positive multiple of the %d-byte block size", i, c, bs)
		}
		if i > 0 && c <= cuts[i-1] {
			return nil, fmt.Errorf("blockio: Plan cuts not ascending at %d", i)
		}
	}
	var pieces []bpiece
	var tmp []Run
	for i, it := range b {
		if it.Set == nil {
			return nil, fmt.Errorf("blockio: Plan item %d has no Set", i)
		}
		if it.Set.store != store {
			return nil, fmt.Errorf("blockio: Plan item %d is on a different store", i)
		}
		if err := it.Set.checkVec(fmt.Sprintf("Plan item %d", i), it.Vec, -1); err != nil {
			return nil, err
		}
		for _, sg := range it.Vec {
			if sg.N == 0 {
				continue
			}
			tmp = it.Set.layout.MapRun(tmp[:0], sg.Block, sg.N)
			for _, r := range tmp {
				pieces = append(pieces, bpiece{
					dev: r.Dev, pb: it.Set.base[r.Dev] + r.PBlock, n: r.N,
					bufOff: sg.BufOff + (r.B-sg.Block)*bs,
				})
			}
		}
	}
	// Split every piece at the cut offsets it straddles, so each piece
	// lies in exactly one window.
	if len(cuts) > 0 {
		split := make([]bpiece, 0, len(pieces))
		for _, pc := range pieces {
			for {
				i := sort.Search(len(cuts), func(i int) bool { return cuts[i] > pc.bufOff })
				if i == len(cuts) || cuts[i] >= pc.bufOff+pc.n*bs {
					break
				}
				head := (cuts[i] - pc.bufOff) / bs
				split = append(split, bpiece{dev: pc.dev, pb: pc.pb, n: head, bufOff: pc.bufOff})
				pc.pb += head
				pc.n -= head
				pc.bufOff += head * bs
			}
			split = append(split, pc)
		}
		pieces = split
	}
	sort.Slice(pieces, func(i, j int) bool {
		if pieces[i].dev != pieces[j].dev {
			return pieces[i].dev < pieces[j].dev
		}
		return pieces[i].pb < pieces[j].pb
	})
	pl := &BatchPlan{store: store, bs: bs, wins: make([][]planRun, len(cuts)+1)}
	// One sorted walk merges pieces into per-window runs and detects
	// physical overlap globally (two pieces naming one block make the
	// transfer order ambiguous regardless of their windows).
	lastDev, lastEnd := -1, int64(0)
	for _, pc := range pieces {
		if pc.dev == lastDev && pc.pb < lastEnd {
			return nil, fmt.Errorf("blockio: Plan items overlap on device %d at block %d", pc.dev, pc.pb)
		}
		lastDev, lastEnd = pc.dev, pc.pb+pc.n
		w := sort.Search(len(cuts), func(i int) bool { return cuts[i] > pc.bufOff })
		runs := pl.wins[w]
		if k := len(runs) - 1; k >= 0 && runs[k].dev == pc.dev && runs[k].pb+runs[k].n == pc.pb {
			last := &runs[k]
			last.n += pc.n
			if j := len(last.segs) - 1; last.segs[j].BufOff+last.segs[j].Blocks*bs == pc.bufOff {
				last.segs[j].Blocks += pc.n
			} else {
				last.segs = append(last.segs, Seg{BufOff: pc.bufOff, Blocks: pc.n})
			}
			continue
		}
		pl.wins[w] = append(runs, planRun{
			dev: pc.dev, pb: pc.pb, n: pc.n,
			segs: []Seg{{BufOff: pc.bufOff, Blocks: pc.n}},
		})
	}
	return pl, nil
}

// Windows reports the number of issue windows (len(cuts)+1).
func (pl *BatchPlan) Windows() int { return len(pl.wins) }

// WindowRuns reports how many device requests window w issues
// (diagnostics and tests).
func (pl *BatchPlan) WindowRuns(w int) int { return len(pl.wins[w]) }

// WindowBlocks reports the total blocks window w transfers.
func (pl *BatchPlan) WindowBlocks(w int) int64 {
	var n int64
	for _, r := range pl.wins[w] {
		n += r.n
	}
	return n
}

// ReadWindow reads window w into buf, which stands in for the buffer
// space bytes starting at base: a segment at plan offset o lands at
// buf[o-base:]. Every merged run is one scatter device request; runs
// proceed in parallel across devices under a simulation engine.
func (pl *BatchPlan) ReadWindow(ctx sim.Context, w int, buf []byte, base int64) error {
	return pl.do(ctx, "ReadWindow", w, buf, base, Store.ReadBlocksVec)
}

// WriteWindow writes window w from buf (offset like ReadWindow) — the
// write counterpart.
func (pl *BatchPlan) WriteWindow(ctx sim.Context, w int, buf []byte, base int64) error {
	return pl.do(ctx, "WriteWindow", w, buf, base, Store.WriteBlocksVec)
}

// do issues window w's runs against buf.
func (pl *BatchPlan) do(ctx sim.Context, op string, w int, buf []byte, base int64,
	xfer func(Store, sim.Context, int, int64, int, [][]byte) error) error {
	if w < 0 || w >= len(pl.wins) {
		return fmt.Errorf("blockio: %s window %d of %d", op, w, len(pl.wins))
	}
	runs := pl.wins[w]
	if len(runs) == 0 {
		return nil
	}
	iov := func(r planRun) ([][]byte, error) {
		out := make([][]byte, len(r.segs))
		for i, sg := range r.segs {
			off := sg.BufOff - base
			if off < 0 || off+sg.Blocks*pl.bs > int64(len(buf)) {
				return nil, fmt.Errorf("blockio: %s window %d: plan bytes [%d,%d) outside the %d-byte buffer at base %d",
					op, w, sg.BufOff, sg.BufOff+sg.Blocks*pl.bs, len(buf), base)
			}
			out[i] = buf[off : off+sg.Blocks*pl.bs]
		}
		return out, nil
	}
	bp := probeOf(pl.store)
	var t0 time.Duration
	if bp != nil {
		t0 = ctx.Now()
	}
	var err error
	if len(runs) == 1 {
		r := runs[0]
		io, ierr := iov(r)
		if ierr != nil {
			return ierr
		}
		err = xfer(pl.store, ctx, r.dev, r.pb, int(r.n), io)
	} else {
		fns := make([]func(sim.Context) error, len(runs))
		for i, r := range runs {
			r := r
			io, ierr := iov(r)
			if ierr != nil {
				return ierr
			}
			fns[i] = func(c sim.Context) error {
				return xfer(pl.store, c, r.dev, r.pb, int(r.n), io)
			}
		}
		err = sim.Par(ctx, fns...)
	}
	if bp != nil {
		var blocks int64
		for _, r := range runs {
			blocks += r.n
		}
		nb := blocks * int64(pl.bs)
		bp.batches.Add(1)
		bp.runs.Add(int64(len(runs)))
		bp.bytes.Add(nb)
		bp.rec.Span(bp.trk, "blockio", op, t0, ctx.Now(), nb, 0)
	}
	return err
}
