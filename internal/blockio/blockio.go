// Package blockio provides the logical-block layer between parallel files
// and storage devices.
//
// A file sees a flat array of logical blocks; a Layout maps each logical
// block to a (device, physical block) pair. The three layout families
// implement the placement strategies of the paper's §4:
//
//   - Striped: logical blocks round-robin across all devices in stripe
//     units ("disk striping" for S and SS files, and — with a unit smaller
//     than the file's block — Livny-style declustering for direct access).
//   - Partitioned: each partition's contiguous logical range lives on one
//     device (one device per process when devices ≥ partitions), the PS
//     strategy; with fewer devices, partitions share devices under a
//     configurable on-device packing policy.
//   - Interleaved: logical block groups belong to processes cyclically
//     (wrapped storage) and each process's stream lives on its device,
//     the IS strategy.
//
// A Store abstracts the device array so reliability wrappers (parity,
// shadowing — package stripe) can interpose transparently.
package blockio

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/probe"
	"repro/internal/sim"
)

// Store is a block-addressed array of devices. Implementations: Direct
// (plain disks), stripe.Parity, stripe.Mirror.
type Store interface {
	// Devices reports how many (data) devices are visible.
	Devices() int
	// BlockSize reports the block size in bytes, identical on all devices.
	BlockSize() int
	// Blocks reports the per-device capacity in blocks.
	Blocks() int64
	// ReadBlock reads physical block pblock of device dev into dst.
	ReadBlock(ctx sim.Context, dev int, pblock int64, dst []byte) error
	// WriteBlock writes src to physical block pblock of device dev.
	WriteBlock(ctx sim.Context, dev int, pblock int64, src []byte) error
	// ReadBlocks reads the n physically contiguous blocks starting at
	// pblock of device dev into dst (len = n × block size), coalescing
	// them into as few device requests as the store's redundancy
	// geometry allows — one for plain disks.
	ReadBlocks(ctx sim.Context, dev int, pblock int64, n int, dst []byte) error
	// WriteBlocks writes the n physically contiguous blocks starting at
	// pblock of device dev from src, the write counterpart of ReadBlocks.
	WriteBlocks(ctx sim.Context, dev int, pblock int64, n int, src []byte) error
	// ReadBlocksVec reads the n physically contiguous blocks starting at
	// pblock of device dev as one coalesced request, scattering
	// consecutive blocks into the elements of dsts in order (each a
	// whole number of blocks, n blocks in total) — the gather-run
	// primitive behind vectored I/O.
	ReadBlocksVec(ctx sim.Context, dev int, pblock int64, n int, dsts [][]byte) error
	// WriteBlocksVec writes the n physically contiguous blocks starting
	// at pblock of device dev as one coalesced request, gathering
	// consecutive blocks from the elements of srcs in order — the write
	// counterpart of ReadBlocksVec.
	WriteBlocksVec(ctx sim.Context, dev int, pblock int64, n int, srcs [][]byte) error
}

// Direct is a Store over plain disks with no redundancy.
type Direct struct {
	disks []*device.Disk
	pr    *batchProbe
}

// batchProbe caches the flight-recorder handles a store hands to the
// batch executors (BatchVec, BatchPlan).
type batchProbe struct {
	rec     *probe.Recorder
	trk     probe.TrackID
	batches *probe.Counter
	runs    *probe.Counter
	bytes   *probe.Counter
}

// storeProber is implemented by stores carrying a flight recorder; the
// batch executors consult it to record merged batch spans. Optional —
// stores without it are simply not traced.
type storeProber interface{ batchProbe() *batchProbe }

func (d *Direct) batchProbe() *batchProbe { return d.pr }

// SetProbe attaches a flight recorder to the store: every merged batch
// issued through it records an async span on the "blockio" track (batch
// start to completion of all its parallel runs) plus batch/run/byte
// counters. Pass nil to detach. Device-level spans are the disks' own
// (device.Disk.SetProbe).
func (d *Direct) SetProbe(r *probe.Recorder) {
	if r == nil {
		d.pr = nil
		return
	}
	m := r.Metrics()
	d.pr = &batchProbe{
		rec:     r,
		trk:     r.AsyncTrack("blockio"),
		batches: m.Counter("blockio.batches"),
		runs:    m.Counter("blockio.runs"),
		bytes:   m.Counter("blockio.bytes"),
	}
}

// NewDirect wraps disks as a Store. All disks must share one geometry.
func NewDirect(disks []*device.Disk) (*Direct, error) {
	if len(disks) == 0 {
		return nil, fmt.Errorf("blockio: empty device set")
	}
	g := disks[0].Geometry()
	for _, d := range disks[1:] {
		if d.Geometry() != g {
			return nil, fmt.Errorf("blockio: mixed geometries in device set")
		}
	}
	return &Direct{disks: disks}, nil
}

// Devices implements Store.
func (d *Direct) Devices() int { return len(d.disks) }

// BlockSize implements Store.
func (d *Direct) BlockSize() int { return d.disks[0].Geometry().BlockSize }

// Blocks implements Store.
func (d *Direct) Blocks() int64 { return d.disks[0].Geometry().Blocks() }

// Disk exposes the underlying disk (for stats and failure injection).
func (d *Direct) Disk(i int) *device.Disk { return d.disks[i] }

// ReadBlock implements Store.
func (d *Direct) ReadBlock(ctx sim.Context, dev int, pblock int64, dst []byte) error {
	return d.disks[dev].ReadBlock(ctx, pblock, dst)
}

// WriteBlock implements Store.
func (d *Direct) WriteBlock(ctx sim.Context, dev int, pblock int64, src []byte) error {
	return d.disks[dev].WriteBlock(ctx, pblock, src)
}

// ReadBlocks implements Store as one device request.
func (d *Direct) ReadBlocks(ctx sim.Context, dev int, pblock int64, n int, dst []byte) error {
	return d.disks[dev].ReadBlocks(ctx, pblock, n, dst)
}

// WriteBlocks implements Store as one device request.
func (d *Direct) WriteBlocks(ctx sim.Context, dev int, pblock int64, n int, src []byte) error {
	return d.disks[dev].WriteBlocks(ctx, pblock, n, src)
}

// ReadBlocksVec implements Store as one scatter device request.
func (d *Direct) ReadBlocksVec(ctx sim.Context, dev int, pblock int64, n int, dsts [][]byte) error {
	return d.disks[dev].ReadBlocksVec(ctx, pblock, n, dsts)
}

// WriteBlocksVec implements Store as one gather device request.
func (d *Direct) WriteBlocksVec(ctx sim.Context, dev int, pblock int64, n int, srcs [][]byte) error {
	return d.disks[dev].WriteBlocksVec(ctx, pblock, n, srcs)
}

// Layout maps a file's logical blocks onto a device set. Physical block
// numbers are relative to the file's per-device extent (the volume adds
// the extent base).
type Layout interface {
	// Name identifies the layout for diagnostics and metadata.
	Name() string
	// Devices reports how many devices the layout spreads over.
	Devices() int
	// Map locates logical block b.
	Map(b int64) (dev int, pblock int64)
	// MapRun appends to dst the maximal physically contiguous runs
	// covering the logical range [b, b+n), in ascending logical order.
	// It is the contiguity iterator behind extent (multi-block) I/O and
	// never calls Map per block: each implementation walks its layout a
	// granule (stripe unit, partition span, interleave group) at a time.
	MapRun(dst []Run, b, n int64) []Run
}

// PerDevice computes how many physical blocks a layout needs on each
// device to hold total logical blocks (the per-device extent sizes).
// Known layouts are computed in closed form; unknown implementations
// fall back to mapping every block.
func PerDevice(l Layout, total int64) []int64 {
	need := make([]int64, l.Devices())
	if total <= 0 {
		return need
	}
	switch t := l.(type) {
	case *Striped:
		t.perDevice(need, total)
	case *Partitioned:
		t.perDevice(need, total)
	case *Interleaved:
		t.perDevice(need, total)
	default:
		for b := int64(0); b < total; b++ {
			dev, pb := l.Map(b)
			if pb+1 > need[dev] {
				need[dev] = pb + 1
			}
		}
	}
	return need
}

// Pack selects how streams that share a device are packed on it.
type Pack int

const (
	// PackContiguous stores each stream in one contiguous run; runs
	// follow one another. Sequential within a stream, but streams
	// progressing together cause long seeks between runs.
	PackContiguous Pack = iota
	// PackInterleaved interleaves the streams' units round-robin, so
	// streams progressing together stay within a short seek distance.
	PackInterleaved
)

// String implements fmt.Stringer.
func (p Pack) String() string {
	switch p {
	case PackContiguous:
		return "contiguous"
	case PackInterleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("Pack(%d)", int(p))
	}
}

// Striped spreads logical blocks round-robin across devices in units of
// Unit blocks: the implementation for S and SS files (§4) and, with Unit
// smaller than the file block, for declustered direct access files.
type Striped struct {
	D    int
	Unit int64
}

// NewStriped returns a striped layout over d devices with the given
// stripe unit in blocks (minimum 1).
func NewStriped(d int, unit int64) *Striped {
	if unit < 1 {
		unit = 1
	}
	return &Striped{D: d, Unit: unit}
}

// Name implements Layout.
func (s *Striped) Name() string { return fmt.Sprintf("striped(d=%d,unit=%d)", s.D, s.Unit) }

// Devices implements Layout.
func (s *Striped) Devices() int { return s.D }

// Map implements Layout.
func (s *Striped) Map(b int64) (int, int64) {
	stripe := b / s.Unit
	dev := int(stripe % int64(s.D))
	pblock := (stripe/int64(s.D))*s.Unit + b%s.Unit
	return dev, pblock
}

// Partitioned is the PS placement: partition p (a contiguous logical
// range) lives on device p mod D. With fewer devices than partitions,
// cohabiting partitions are packed per the policy, in units of Unit
// blocks (the file's block, so paper-blocks stay physically contiguous
// under PackInterleaved).
type Partitioned struct {
	D      int
	Unit   int64
	Policy Pack

	starts []int64 // logical start of each partition; len = parts+1
	base   []int64 // PackContiguous: physical base of each partition on its device
	shareK []int   // per partition: number of partitions sharing its device
	rank   []int   // per partition: rank among partitions on its device
}

// NewPartitioned builds a PS layout. partBlocks gives each partition's
// size in logical blocks; unit is the file block size in logical blocks
// (≥1) used as the interleaving granule under PackInterleaved.
func NewPartitioned(d int, partBlocks []int64, unit int64, policy Pack) (*Partitioned, error) {
	if d <= 0 {
		return nil, fmt.Errorf("blockio: partitioned layout needs devices > 0")
	}
	if len(partBlocks) == 0 {
		return nil, fmt.Errorf("blockio: partitioned layout needs partitions")
	}
	if unit < 1 {
		unit = 1
	}
	p := &Partitioned{D: d, Unit: unit, Policy: policy}
	p.starts = make([]int64, len(partBlocks)+1)
	for i, n := range partBlocks {
		if n < 0 {
			return nil, fmt.Errorf("blockio: negative partition size")
		}
		p.starts[i+1] = p.starts[i] + n
	}
	p.base = make([]int64, len(partBlocks))
	p.shareK = make([]int, len(partBlocks))
	p.rank = make([]int, len(partBlocks))
	for i := range partBlocks {
		dev := i % d
		k, rk := 0, 0
		var base int64
		for j := range partBlocks {
			if j%d != dev {
				continue
			}
			if j < i {
				rk++
				base += partBlocks[j]
			}
			k++
		}
		p.base[i] = base
		p.shareK[i] = k
		p.rank[i] = rk
	}
	return p, nil
}

// Name implements Layout.
func (p *Partitioned) Name() string {
	return fmt.Sprintf("partitioned(d=%d,parts=%d,%s)", p.D, len(p.starts)-1, p.Policy)
}

// Devices implements Layout.
func (p *Partitioned) Devices() int { return p.D }

// Parts reports the number of partitions.
func (p *Partitioned) Parts() int { return len(p.starts) - 1 }

// PartRange reports the logical block range [start, end) of partition i.
func (p *Partitioned) PartRange(i int) (start, end int64) {
	return p.starts[i], p.starts[i+1]
}

// PartOf reports which partition holds logical block b.
func (p *Partitioned) PartOf(b int64) int {
	return sort.Search(len(p.starts)-1, func(i int) bool { return p.starts[i+1] > b })
}

// Map implements Layout.
func (p *Partitioned) Map(b int64) (int, int64) {
	part := p.PartOf(b)
	within := b - p.starts[part]
	dev := part % p.D
	switch p.Policy {
	case PackInterleaved:
		k := int64(p.shareK[part])
		unitIdx := within / p.Unit
		pblock := (unitIdx*k+int64(p.rank[part]))*p.Unit + within%p.Unit
		return dev, pblock
	default: // PackContiguous
		return dev, p.base[part] + within
	}
}

// Interleaved is the IS placement: logical block group g (of Unit blocks)
// belongs to process g mod P; process p's stream lives on device p mod D.
// Streams sharing a device are packed per the policy.
type Interleaved struct {
	D      int
	P      int
	Unit   int64
	Policy Pack
	total  int64 // total logical blocks (needed for contiguous packing)
}

// NewInterleaved builds an IS layout for procs processes over d devices
// with file blocks of unit logical blocks and total logical blocks
// overall (total bounds stream lengths under PackContiguous; the final
// partial group is allocated a full unit).
func NewInterleaved(d, procs int, unit, total int64, policy Pack) (*Interleaved, error) {
	if d <= 0 || procs <= 0 {
		return nil, fmt.Errorf("blockio: interleaved layout needs devices > 0 and procs > 0")
	}
	if unit < 1 {
		unit = 1
	}
	return &Interleaved{D: d, P: procs, Unit: unit, Policy: policy, total: total}, nil
}

// groups reports the total number of unit-sized groups in the file.
func (il *Interleaved) groups() int64 {
	return (il.total + il.Unit - 1) / il.Unit
}

// streamGroups reports how many groups process q owns.
func (il *Interleaved) streamGroups(q int) int64 {
	g := il.groups()
	if int64(q) >= g {
		return 0
	}
	return (g-int64(q)-1)/int64(il.P) + 1
}

// Name implements Layout.
func (il *Interleaved) Name() string {
	return fmt.Sprintf("interleaved(d=%d,p=%d,unit=%d)", il.D, il.P, il.Unit)
}

// Devices implements Layout.
func (il *Interleaved) Devices() int { return il.D }

// procsOnDev reports how many processes share device dev.
func (il *Interleaved) procsOnDev(dev int) int {
	if dev >= il.P {
		return 0
	}
	return (il.P-1-dev)/il.D + 1
}

// Map implements Layout.
func (il *Interleaved) Map(b int64) (int, int64) {
	group := b / il.Unit
	proc := int(group % int64(il.P))
	round := group / int64(il.P)
	dev := proc % il.D
	if il.Policy == PackContiguous {
		var base int64
		for q := dev; q < proc; q += il.D {
			base += il.streamGroups(q) * il.Unit
		}
		return dev, base + round*il.Unit + b%il.Unit
	}
	k := int64(il.procsOnDev(dev))
	procRank := int64(proc / il.D)
	pblock := (round*k+procRank)*il.Unit + b%il.Unit
	return dev, pblock
}

var (
	_ Layout = (*Striped)(nil)
	_ Layout = (*Partitioned)(nil)
	_ Layout = (*Interleaved)(nil)
	_ Store  = (*Direct)(nil)
)

// Set binds a Store, a Layout and per-device extent bases into the
// file-facing interface: logical-block reads and writes.
type Set struct {
	store  Store
	layout Layout
	base   []int64

	// sieveLocks serializes sieved read-modify-write spans per device
	// (lazily created; engine contexts only — see WriteVecSieved). The
	// map is only ever touched by engine-managed processes, whose strict
	// alternation provides the required happens-before edges, mirroring
	// stripe.Parity's row-lock map.
	sieveLocks map[int]*sim.Mutex
}

// NewSet builds a Set. base gives the first physical block of the file's
// extent on each device (len must equal layout.Devices()).
func NewSet(store Store, layout Layout, base []int64) (*Set, error) {
	if layout.Devices() > store.Devices() {
		return nil, fmt.Errorf("blockio: layout wants %d devices, store has %d", layout.Devices(), store.Devices())
	}
	if len(base) != layout.Devices() {
		return nil, fmt.Errorf("blockio: %d extent bases for %d devices", len(base), layout.Devices())
	}
	return &Set{store: store, layout: layout, base: base}, nil
}

// Store exposes the underlying store.
func (s *Set) Store() Store { return s.store }

// Bases returns a copy of the per-device extent bases (for persistence).
func (s *Set) Bases() []int64 {
	out := make([]int64, len(s.base))
	copy(out, s.base)
	return out
}

// Layout exposes the layout.
func (s *Set) Layout() Layout { return s.layout }

// BlockSize reports the store block size.
func (s *Set) BlockSize() int { return s.store.BlockSize() }

// Locate reports the physical location of logical block b (for tracing).
func (s *Set) Locate(b int64) (dev int, pblock int64) {
	dev, pb := s.layout.Map(b)
	return dev, s.base[dev] + pb
}

// ReadBlock reads logical block b into dst.
func (s *Set) ReadBlock(ctx sim.Context, b int64, dst []byte) error {
	dev, pb := s.layout.Map(b)
	return s.store.ReadBlock(ctx, dev, s.base[dev]+pb, dst)
}

// WriteBlock writes src to logical block b.
func (s *Set) WriteBlock(ctx sim.Context, b int64, src []byte) error {
	dev, pb := s.layout.Map(b)
	return s.store.WriteBlock(ctx, dev, s.base[dev]+pb, src)
}
