// Strategy selection: a per-operation cost model that prices the
// vectored and sieved execution of one scatter/gather descriptor from
// the modeled device parameters and picks the cheaper path — the
// Set-level half of the stack's self-tuning ("Noncontiguous I/O through
// PVFS" shows no fixed choice wins across workloads). The collective
// layer extends the same comparison with the two-phase route and the
// interconnect model (internal/collective).

package blockio

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/sim"
)

// Strategy selects how a noncontiguous transfer executes. The zero
// value, StrategyDefault, is each layer's historical path (vectored for
// independent Set transfers, two-phase for collectives), so zero-valued
// options keep every pinned modeled time bit-identical.
type Strategy int

const (
	// StrategyDefault keeps the layer's historical path.
	StrategyDefault Strategy = iota
	// StrategyVectored forces one request per physically contiguous
	// gather run (ReadVec/WriteVec).
	StrategyVectored
	// StrategySieved forces data sieving: one covering span per device,
	// holes moved through scratch, writes as read-modify-write
	// (ReadVecSieved/WriteVecSieved).
	StrategySieved
	// StrategyCollective forces the two-phase collective path where one
	// exists (internal/collective); independent Set transfers treat it
	// as vectored.
	StrategyCollective
	// StrategyAuto prices the candidate paths with the cost model and
	// picks the cheapest per operation.
	StrategyAuto
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyDefault:
		return "default"
	case StrategyVectored:
		return "vectored"
	case StrategySieved:
		return "sieved"
	case StrategyCollective:
		return "collective"
	case StrategyAuto:
		return "auto"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// CostModel carries the modeled machine parameters a strategy decision
// prices transfers with. The device half comes from StoreCostModel; the
// link half (used by the collective layer) from mpp.Group.LinkModel.
// The zero value prices requests as free, under which Auto degenerates
// to the vectored path — harmless, never wrong.
type CostModel struct {
	// ReqFixed is the expected fixed cost of one device request:
	// controller overhead + average rotational latency + an average
	// seek. It is what sieving trades transfer bytes against.
	ReqFixed time.Duration
	// DevBytesPerSec is one device's streaming transfer rate.
	DevBytesPerSec float64
	// LinkMsg and LinkBytesPerSec are the per-process interconnect
	// model; BisectionBytesPerSec the shared pool (0 = uncontended).
	// Zero values mean communication is free, the historical default.
	LinkMsg              time.Duration
	LinkBytesPerSec      float64
	BisectionBytesPerSec float64
	// Ranks is the number of processes accessing the store at once.
	Ranks int
}

// DeviceTimer is implemented by stores that can report their drives'
// service-time model (Direct, stripe.Parity, stripe.Mirror). Stores
// without it price requests with the 1989 defaults.
type DeviceTimer interface {
	DeviceTiming() device.Timing
}

// DeviceTiming implements DeviceTimer for plain disk arrays.
func (d *Direct) DeviceTiming() device.Timing { return d.disks[0].Timing() }

// StoreCostModel derives the device half of a cost model from a store's
// drive parameters, for ranks concurrent accessors.
func StoreCostModel(store Store, ranks int) CostModel {
	t := device.DefaultTiming1989()
	if dt, ok := store.(DeviceTimer); ok {
		t = dt.DeviceTiming()
	}
	if ranks < 1 {
		ranks = 1
	}
	return CostModel{
		ReqFixed:       t.Overhead + t.RotationPeriod/2 + (t.SeekMin+t.SeekMax)/2,
		DevBytesPerSec: t.TransferRate,
		Ranks:          ranks,
	}
}

// Xfer prices moving bytes at the device transfer rate.
func (m CostModel) Xfer(bytes int64) time.Duration {
	if m.DevBytesPerSec <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / m.DevBytesPerSec * float64(time.Second))
}

// VecCost prices the vectored execution of mapped gather runs: devices
// proceed in parallel, so the cost is the slowest device's requests
// plus its useful bytes.
func (m CostModel) VecCost(runs []Run, bs int64) time.Duration {
	var worst time.Duration
	for i := 0; i < len(runs); {
		j := i + 1
		var bytes int64
		for ; j <= len(runs); j++ {
			if j == len(runs) || runs[j].Dev != runs[i].Dev {
				break
			}
		}
		for _, r := range runs[i:j] {
			bytes += r.N * bs
		}
		if d := time.Duration(j-i)*m.ReqFixed + m.Xfer(bytes); d > worst {
			worst = d
		}
		i = j
	}
	return worst
}

// SieveCost prices the sieved execution of the covering spans: one
// request moving the whole span per device for reads, two requests
// moving it twice for the read-modify-write of writes; again the
// slowest device bounds the operation.
func (m CostModel) SieveCost(spans []SieveSpan, bs int64, write bool) time.Duration {
	var worst time.Duration
	for _, sp := range spans {
		d := m.ReqFixed + m.Xfer(sp.Blocks*bs)
		if write && sp.Useful < sp.Blocks {
			d *= 2
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// ChooseVecStrategy resolves StrategyAuto for one Set transfer: the
// descriptor is mapped once and the vectored and sieved executions are
// priced; the cheaper one wins (ties to vectored, which never moves
// bytes nobody asked for). Fixed strategies pass through unchanged
// (StrategyDefault and StrategyCollective mean vectored at this layer).
func (s *Set) ChooseVecStrategy(m CostModel, vec Vec, write bool) (Strategy, error) {
	if err := s.checkVec("ChooseVecStrategy", vec, -1); err != nil {
		return 0, err
	}
	runs := s.mapVec(vec)
	bs := int64(s.store.BlockSize())
	if m.SieveCost(s.sieveSpans(runs), bs, write) < m.VecCost(runs, bs) {
		return StrategySieved, nil
	}
	return StrategyVectored, nil
}

// ReadVecStrategy reads vec into buf through the path strat selects,
// resolving StrategyAuto with the cost model per operation.
func (s *Set) ReadVecStrategy(ctx sim.Context, strat Strategy, m CostModel, vec Vec, buf []byte) error {
	return s.doVecStrategy(ctx, strat, m, vec, buf, false)
}

// WriteVecStrategy writes vec from buf through the path strat selects —
// the write counterpart of ReadVecStrategy.
func (s *Set) WriteVecStrategy(ctx sim.Context, strat Strategy, m CostModel, vec Vec, buf []byte) error {
	return s.doVecStrategy(ctx, strat, m, vec, buf, true)
}

func (s *Set) doVecStrategy(ctx sim.Context, strat Strategy, m CostModel, vec Vec, buf []byte, write bool) error {
	if strat == StrategyAuto {
		var err error
		if strat, err = s.ChooseVecStrategy(m, vec, write); err != nil {
			return err
		}
	}
	switch {
	case strat == StrategySieved && write:
		return s.WriteVecSieved(ctx, vec, buf)
	case strat == StrategySieved:
		return s.ReadVecSieved(ctx, vec, buf)
	case write:
		return s.WriteVec(ctx, vec, buf)
	default:
		return s.ReadVec(ctx, vec, buf)
	}
}
