// Package workload provides deterministic workload generators for the
// experiment harness: the application patterns the paper's organizations
// were designed for (wrapped matrices, multi-server task queues, skewed
// database access, out-of-core sweeps).
package workload

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/sim"
)

// Record synthesizes the payload of record rec for stream seed: a
// self-identifying pattern (seed, rec, then a byte fill) so experiments
// can verify data integrity cheaply.
func Record(buf []byte, seed uint64, rec int64) {
	if len(buf) >= 16 {
		binary.BigEndian.PutUint64(buf[0:8], seed)
		binary.BigEndian.PutUint64(buf[8:16], uint64(rec))
	}
	fill := byte(seed) ^ byte(rec)
	for i := 16; i < len(buf); i++ {
		buf[i] = fill
	}
}

// CheckRecord verifies a payload produced by Record.
func CheckRecord(buf []byte, seed uint64, rec int64) error {
	if len(buf) >= 16 {
		if got := binary.BigEndian.Uint64(buf[0:8]); got != seed {
			return fmt.Errorf("workload: record %d: seed %d, want %d", rec, got, seed)
		}
		if got := binary.BigEndian.Uint64(buf[8:16]); got != uint64(rec) {
			return fmt.Errorf("workload: record %d: index %d", rec, got)
		}
	}
	fill := byte(seed) ^ byte(rec)
	for i := 16; i < len(buf); i++ {
		if buf[i] != fill {
			return fmt.Errorf("workload: record %d: fill byte %d = %#x, want %#x", rec, i, buf[i], fill)
		}
	}
	return nil
}

// Matrix describes a dense matrix stored one row per record.
type Matrix struct {
	Rows, Cols int
	ElemSize   int // bytes per element
}

// RecordSize reports the row record size in bytes.
func (m Matrix) RecordSize() int { return m.Cols * m.ElemSize }

// WrappedOwner reports which of p processes owns row r under wrapped
// (cyclic) storage — the paper's example use of IS files.
func (m Matrix) WrappedOwner(r, p int) int { return r % p }

// BlockOwner reports which of p processes owns row r under block
// (contiguous) partitioning — the PS analogue.
func (m Matrix) BlockOwner(r, p int) int {
	per := (m.Rows + p - 1) / p
	return r / per
}

// Task is one unit of work drawn from a task queue.
type Task struct {
	ID      int64
	Service time.Duration // compute time the worker must spend
}

// TaskQueue generates a deterministic sequence of tasks with variable
// service times — the "queue with multiple servers" workload that
// motivates self-scheduled files (§3.1).
type TaskQueue struct {
	rng      *sim.RNG
	n        int64
	next     int64
	min, max time.Duration
}

// NewTaskQueue builds a queue of n tasks with service times uniform in
// [min, max] drawn from seed.
func NewTaskQueue(seed uint64, n int64, min, max time.Duration) *TaskQueue {
	if max < min {
		min, max = max, min
	}
	return &TaskQueue{rng: sim.NewRNG(seed), n: n, min: min, max: max}
}

// Len reports the total task count.
func (q *TaskQueue) Len() int64 { return q.n }

// ServiceOf deterministically computes task id's service time (the same
// value Next would have produced), so tasks can be reconstructed from
// records read back out of a file.
func ServiceOf(seed uint64, id int64, min, max time.Duration) time.Duration {
	r := sim.NewRNG(seed ^ uint64(id)*0x9e3779b97f4a7c15)
	if max <= min {
		return min
	}
	return min + time.Duration(r.Int63n(int64(max-min)))
}

// Next returns the next task, or false when exhausted.
func (q *TaskQueue) Next() (Task, bool) {
	if q.next >= q.n {
		return Task{}, false
	}
	id := q.next
	q.next++
	return Task{ID: id, Service: ServiceOf(0, id, q.min, q.max)}, true
}

// AccessPattern generates record indices for direct-access experiments.
type AccessPattern struct {
	rng  *sim.RNG
	zipf *sim.Zipf
	n    int64
}

// NewUniformAccess draws records uniformly from [0, n).
func NewUniformAccess(seed uint64, n int64) *AccessPattern {
	return &AccessPattern{rng: sim.NewRNG(seed), n: n}
}

// NewZipfAccess draws records Zipf-distributed over [0, n) with skew s
// (Livny et al.'s non-uniform database workload).
func NewZipfAccess(seed uint64, n int64, s float64) *AccessPattern {
	rng := sim.NewRNG(seed)
	return &AccessPattern{rng: rng, zipf: sim.NewZipf(rng, int(n), s), n: n}
}

// Next draws the next record index.
func (a *AccessPattern) Next() int64 {
	if a.zipf != nil {
		return int64(a.zipf.Next())
	}
	return a.rng.Int63n(a.n)
}

// Stencil1D describes an out-of-core 1-D stencil sweep: n points split
// into p partitions, each needing halo neighbours per pass — the
// workload behind the §5 boundary-data discussion and the PDA paging
// model.
type Stencil1D struct {
	Points int64
	Parts  int
	Halo   int64
}

// BasePerPart reports the owned points per partition (last may be short).
func (s Stencil1D) BasePerPart() int64 {
	return (s.Points + int64(s.Parts) - 1) / int64(s.Parts)
}

// NeededRange reports the global point range [first, end) partition p
// must read for one pass (own points plus halos, clipped).
func (s Stencil1D) NeededRange(p int) (first, end int64) {
	base := s.BasePerPart()
	first = int64(p)*base - s.Halo
	end = int64(p)*base + base + s.Halo
	if first < 0 {
		first = 0
	}
	if end > s.Points {
		end = s.Points
	}
	return first, end
}

// OwnedRange reports the points partition p owns (no halo).
func (s Stencil1D) OwnedRange(p int) (first, end int64) {
	base := s.BasePerPart()
	first = int64(p) * base
	end = first + base
	if first > s.Points {
		first = s.Points
	}
	if end > s.Points {
		end = s.Points
	}
	return first, end
}
