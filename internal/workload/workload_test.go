package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRecordRoundTrip(t *testing.T) {
	buf := make([]byte, 64)
	Record(buf, 42, 7)
	if err := CheckRecord(buf, 42, 7); err != nil {
		t.Fatal(err)
	}
	if err := CheckRecord(buf, 42, 8); err == nil {
		t.Fatal("wrong record accepted")
	}
	if err := CheckRecord(buf, 43, 7); err == nil {
		t.Fatal("wrong seed accepted")
	}
	buf[40] ^= 1
	if err := CheckRecord(buf, 42, 7); err == nil {
		t.Fatal("corrupted fill accepted")
	}
}

func TestRecordSmallBuffers(t *testing.T) {
	// Buffers under 16 bytes carry only fill; must still round-trip.
	buf := make([]byte, 8)
	Record(buf, 1, 2)
	if err := CheckRecord(buf, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRecordQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64, rec int64, size uint8) bool {
		if rec < 0 {
			rec = -rec
		}
		buf := make([]byte, int(size)+16)
		Record(buf, seed, rec)
		return CheckRecord(buf, seed, rec) == nil
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixOwners(t *testing.T) {
	m := Matrix{Rows: 10, Cols: 4, ElemSize: 8}
	if m.RecordSize() != 32 {
		t.Fatalf("RecordSize = %d", m.RecordSize())
	}
	for r := 0; r < 10; r++ {
		if m.WrappedOwner(r, 3) != r%3 {
			t.Fatal("wrapped owner")
		}
	}
	// Block partitioning of 10 rows over 3 procs: 4,4,2.
	wantBlock := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for r, want := range wantBlock {
		if got := m.BlockOwner(r, 3); got != want {
			t.Fatalf("block owner(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestTaskQueueDeterministic(t *testing.T) {
	q1 := NewTaskQueue(9, 50, time.Millisecond, 5*time.Millisecond)
	q2 := NewTaskQueue(9, 50, time.Millisecond, 5*time.Millisecond)
	for {
		t1, ok1 := q1.Next()
		t2, ok2 := q2.Next()
		if ok1 != ok2 {
			t.Fatal("queues diverged in length")
		}
		if !ok1 {
			break
		}
		if t1 != t2 {
			t.Fatalf("tasks diverged: %+v %+v", t1, t2)
		}
		if t1.Service < time.Millisecond || t1.Service > 5*time.Millisecond {
			t.Fatalf("service %v out of range", t1.Service)
		}
	}
	if q1.Len() != 50 {
		t.Fatalf("Len = %d", q1.Len())
	}
}

func TestServiceOfMatchesQueue(t *testing.T) {
	q := NewTaskQueue(0, 20, 2*time.Millisecond, 9*time.Millisecond)
	for {
		task, ok := q.Next()
		if !ok {
			break
		}
		if got := ServiceOf(0, task.ID, 2*time.Millisecond, 9*time.Millisecond); got != task.Service {
			t.Fatalf("ServiceOf(%d) = %v, queue said %v", task.ID, got, task.Service)
		}
	}
	if got := ServiceOf(0, 1, 5*time.Millisecond, 5*time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("degenerate range = %v", got)
	}
}

func TestAccessPatterns(t *testing.T) {
	u := NewUniformAccess(3, 100)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		r := u.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("uniform out of range: %d", r)
		}
		counts[r]++
	}
	z := NewZipfAccess(3, 100, 1.0)
	zc := make([]int, 100)
	for i := 0; i < 10000; i++ {
		r := z.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("zipf out of range: %d", r)
		}
		zc[r]++
	}
	if zc[0] <= counts[0]*3 {
		t.Fatalf("zipf rank0 %d not clearly hotter than uniform %d", zc[0], counts[0])
	}
}

func TestStencilRanges(t *testing.T) {
	s := Stencil1D{Points: 100, Parts: 4, Halo: 2}
	if s.BasePerPart() != 25 {
		t.Fatalf("base = %d", s.BasePerPart())
	}
	f, e := s.NeededRange(0)
	if f != 0 || e != 27 {
		t.Fatalf("part0 needed [%d,%d)", f, e)
	}
	f, e = s.NeededRange(1)
	if f != 23 || e != 52 {
		t.Fatalf("part1 needed [%d,%d)", f, e)
	}
	f, e = s.NeededRange(3)
	if f != 73 || e != 100 {
		t.Fatalf("part3 needed [%d,%d)", f, e)
	}
	f, e = s.OwnedRange(3)
	if f != 75 || e != 100 {
		t.Fatalf("part3 owned [%d,%d)", f, e)
	}
	// Owned ranges tile the domain.
	var covered int64
	for p := 0; p < 4; p++ {
		of, oe := s.OwnedRange(p)
		covered += oe - of
	}
	if covered != 100 {
		t.Fatalf("owned ranges cover %d points", covered)
	}
}
