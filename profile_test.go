// Profile acceptance: the ROADMAP's "modern defaults" bundle
// (TunedProfile — extents, SCAN, queue merging, a real interconnect,
// locality-aware chunked collectives) must beat the paper's
// configuration on the checkpoint scenario, even though the paper's
// interconnect is free: the pipelined collective hides the tuned
// profile's real exchange cost behind the drives, and the extent
// read-back collapses the paper's block-at-a-time scan.
package pario_test

import (
	"io"
	"testing"
	"time"

	pario "repro"
)

const (
	profRanks   = 8
	profRecords = 2048 // 4 KiB records = fs blocks, unit-1 declustered
)

// runProfileCheckpoint runs the checkpoint scenario under a profile: an
// 8-rank strided collective write of the checkpoint, then one
// sequential scan validating it (the restart read), all on a 4-drive
// machine configured by the profile.
func runProfileCheckpoint(tb testing.TB, pf pario.Profile) time.Duration {
	tb.Helper()
	m := pario.NewProfiledMachine(4, pf)
	f, err := m.Volume.Create(pario.Spec{
		Name: "ckpt", Org: pario.OrgGlobalDirect,
		RecordSize: 4096, BlockRecords: 1, NumRecords: profRecords,
		Placement: pario.PlaceStriped, StripeUnitFS: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	group, err := m.Volume.OpenGroup("ckpt")
	if err != nil {
		tb.Fatal(err)
	}
	col, err := pario.OpenCollective(group, profRanks, pf.Collective)
	if err != nil {
		tb.Fatal(err)
	}
	rg := m.GoRanks(profRanks, "rank", func(r *pario.Rank) {
		rank := int64(r.Rank())
		var vec pario.Vec
		var off int64
		for b := rank; b < profRecords; b += profRanks {
			vec = append(vec, pario.VecSeg{Block: b, N: 1, BufOff: off})
			off += 4096
		}
		buf := make([]byte, off)
		for i, sg := range vec {
			buf[int64(i)*4096] = byte(sg.Block)
			buf[int64(i)*4096+1] = byte(sg.Block >> 8)
		}
		if err := col.WriteAll(r, []pario.VecReq{{File: 0, Vec: vec}}, buf); err != nil {
			tb.Errorf("rank %d: %v", rank, err)
			return
		}
		// All ranks leave WriteAll together; rank 0 performs the restart
		// scan through the profile's access options.
		if r.Rank() != 0 {
			return
		}
		rd, err := pario.OpenReader(f, pf.Access)
		if err != nil {
			tb.Error(err)
			return
		}
		for b := int64(0); ; b++ {
			rec, _, err := rd.ReadRecord(r.Proc)
			if err == io.EOF {
				if b != profRecords {
					tb.Errorf("scan ended after %d of %d records", b, profRecords)
				}
				break
			}
			if err != nil {
				tb.Error(err)
				return
			}
			if rec[0] != byte(b) || rec[1] != byte(b>>8) {
				tb.Errorf("record %d corrupt under profile %q", b, pf.Name)
				return
			}
		}
		if err := rd.Close(r.Proc); err != nil {
			tb.Error(err)
		}
	})
	pf.ConfigureRanks(rg)
	if err := m.Run(); err != nil {
		tb.Fatal(err)
	}
	return m.Engine.Now()
}

// TestTunedProfileWins asserts the modern-defaults bundle beats the
// paper configuration on the checkpoint scenario.
func TestTunedProfileWins(t *testing.T) {
	paper := runProfileCheckpoint(t, pario.PaperProfile())
	tuned := runProfileCheckpoint(t, pario.TunedProfile())
	ratio := paper.Seconds() / tuned.Seconds()
	t.Logf("checkpoint write + restart scan: paper %v -> tuned %v (%.2fx)", paper, tuned, ratio)
	if tuned >= paper {
		t.Errorf("tuned profile (%v) does not beat paper defaults (%v)", tuned, paper)
	}
	if ratio < 1.5 {
		t.Errorf("tuned profile wins only %.2fx, want ≥1.5x", ratio)
	}
}
