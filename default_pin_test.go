// Default-model pinning: the free-link, round-robin configuration must
// stay bit-identical as the interconnect and placement models grow.
// These golden durations were recorded when the shared-link model and
// locality-aware domains landed (ISSUE 4); any future change that
// perturbs default timings — a stray charge on the free link, a changed
// exchange order, a different domain assignment — fails here before it
// can silently shift the paper's modeled shapes.
package pario_test

import (
	"testing"
	"time"

	pario "repro"
)

// pinnedCheckpoint runs the PR 3 strided checkpoint write (8 ranks, 1024
// records, unit-1 declustered over 4 default drives) with the given link
// configuration and returns the modeled elapsed time.
func pinnedCheckpoint(t *testing.T, collective bool, configure func(*pario.RankGroup)) time.Duration {
	t.Helper()
	m := pario.NewMachine(4)
	// Live flight recorder: the pinned golden times below must hold with
	// tracing on — recording reads the virtual clock only.
	m.SetProbe(pario.NewRecorder())
	f, err := m.Volume.Create(pario.Spec{
		Name: "ckpt", Org: pario.OrgGlobalDirect,
		RecordSize: 4096, BlockRecords: 1, NumRecords: ckptRecords,
		Placement: pario.PlaceStriped, StripeUnitFS: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	group, err := m.Volume.OpenGroup("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	col, err := pario.OpenCollective(group, ckptRanks, pario.CollectiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rg := m.GoRanks(ckptRanks, "rank", func(r *pario.Rank) {
		rank := int64(r.Rank())
		var vec pario.Vec
		var off int64
		for b := rank; b < ckptRecords; b += ckptRanks {
			vec = append(vec, pario.VecSeg{Block: b, N: 1, BufOff: off})
			off += 4096
		}
		buf := make([]byte, off)
		if collective {
			if err := col.WriteAll(r, []pario.VecReq{{File: 0, Vec: vec}}, buf); err != nil {
				t.Errorf("rank %d: %v", rank, err)
			}
			return
		}
		if err := f.Set().WriteVec(r.Proc, vec, buf); err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	})
	if configure != nil {
		configure(rg)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Engine.Now()
}

// TestDefaultModelPinned asserts exact golden elapsed times for the
// default configurations: the free link (nothing configured — the
// paper's model) and the PR 3 per-process link (SetLink only), each for
// the independent and collective paths. Bit-identical means equal, not
// approximately equal.
func TestDefaultModelPinned(t *testing.T) {
	free := func(*pario.RankGroup) {}
	pr3 := func(rg *pario.RankGroup) { rg.SetLink(10*time.Microsecond, 100e6) }
	cases := []struct {
		name       string
		collective bool
		configure  func(*pario.RankGroup)
		want       time.Duration
	}{
		{"independent/free-link", false, free, 2988389208 * time.Nanosecond},
		{"collective/free-link", true, free, 746086164 * time.Nanosecond},
		{"independent/per-process-link", false, pr3, 2988389208 * time.Nanosecond},
		{"collective/per-process-link", true, pr3, 765833008 * time.Nanosecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := pinnedCheckpoint(t, tc.collective, tc.configure)
			if got != tc.want {
				t.Errorf("elapsed = %v (%d ns), want pinned %v — default-model timing drifted",
					got, got.Nanoseconds(), tc.want)
			}
		})
	}
}
