// Multi-job QoS acceptance: a victim job sharing the I/O service with a
// bully job must see its latency bounded by the scheduler — fair-share
// below FIFO's p99, strict priority at least 2× below — and the whole
// contended scenario must be bit-for-bit deterministic (ISSUE 7
// acceptance numbers, enforced so they cannot regress).
//
// The scenario is the service-era shape the paper's §2 MIMD machine
// could not express: two independent parallel programs (a 4-rank bully
// checkpointing a 512-block file through six back-to-back nonblocking
// collectives, and a 4-rank victim issuing eight small collectives
// arriving just after) share one I/O server with a single device
// worker. Under FIFO the victim's batches queue behind the bully's
// whole backlog; fair-share interleaves dispatches by served bytes;
// strict priority lets every victim batch overtake the queue.
package pario_test

import (
	"testing"
	"time"

	pario "repro"
)

// mjRun is one measured contended run.
type mjRun struct {
	bully, victim pario.IOJobStats
	makespan      time.Duration
}

// runMultijob executes the bully/victim mix under the given policy
// (victimPrio raises the victim's lane for the Priority runs) and
// returns both lanes' stats and the modeled makespan.
func runMultijob(tb testing.TB, pol pario.IOPolicy, victimPrio int) mjRun {
	tb.Helper()
	const ranks = 4
	m := pario.NewMachine(2)
	m.SetProbe(pario.NewRecorder()) // live recorder: must not perturb modeled time or lane stats
	mk := func(name string, blocks int64) *pario.FileGroup {
		if _, err := m.Volume.Create(pario.Spec{
			Name: name, Org: pario.OrgGlobalDirect,
			RecordSize: 4096, BlockRecords: 1, NumRecords: blocks,
			Placement: pario.PlaceStriped, StripeUnitFS: 1,
		}); err != nil {
			tb.Fatal(err)
		}
		g, err := m.Volume.OpenGroup(name)
		if err != nil {
			tb.Fatal(err)
		}
		return g
	}
	gBully, gVictim := mk("big", 512), mk("small", 64)

	srv := pario.NewIOServer(pario.IOServerConfig{Workers: 1, Policy: pol})
	srv.SetProbe(m.Probe())
	laneB := srv.AddJob(pario.IOJobConfig{Name: "bully"})
	laneV := srv.AddJob(pario.IOJobConfig{Name: "victim", Priority: victimPrio})
	srv.Start(m.Engine)
	colB, err := pario.OpenCollective(gBully, ranks, pario.CollectiveOptions{Service: laneB})
	if err != nil {
		tb.Fatal(err)
	}
	colV, err := pario.OpenCollective(gVictim, ranks, pario.CollectiveOptions{Service: laneV})
	if err != nil {
		tb.Fatal(err)
	}

	var done pario.Group
	done.Add(2 * ranks)
	m.GoRanks(ranks, "bully", func(r *pario.Rank) {
		defer done.Done(r.Proc)
		// Six checkpoints issued back to back — the backlog — then the
		// Waits in issue order.
		const per = 512 / ranks
		buf := make([]byte, per*4096)
		reqs := []pario.VecReq{{File: 0, Vec: pario.Vec{{Block: int64(r.Rank() * per), N: per}}}}
		var hs []*pario.IOHandle
		for i := 0; i < 6; i++ {
			h, err := colB.IWriteAll(r, reqs, buf)
			if err != nil {
				tb.Errorf("bully rank %d: %v", r.Rank(), err)
				return
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			if err := h.Wait(r); err != nil {
				tb.Errorf("bully rank %d: %v", r.Rank(), err)
			}
		}
	})
	m.GoRanks(ranks, "victim", func(r *pario.Rank) {
		defer done.Done(r.Proc)
		r.Compute(10 * time.Millisecond) // arrive behind the backlog
		const per = 64 / ranks
		buf := make([]byte, per*4096)
		reqs := []pario.VecReq{{File: 0, Vec: pario.Vec{{Block: int64(r.Rank() * per), N: per}}}}
		for i := 0; i < 8; i++ {
			h, err := colV.IWriteAll(r, reqs, buf)
			if err != nil {
				tb.Errorf("victim rank %d: %v", r.Rank(), err)
				return
			}
			if err := h.Wait(r); err != nil {
				tb.Errorf("victim rank %d: %v", r.Rank(), err)
			}
		}
	})
	var res mjRun
	m.Go("driver", func(p *pario.Proc) {
		done.Wait(p)
		srv.Stop(p)
		res.makespan = p.Now()
	})
	if err := m.Run(); err != nil {
		tb.Fatal(err)
	}
	res.bully, res.victim = laneB.Stats(), laneV.Stats()
	if res.bully.Submitted != res.bully.Completed || res.victim.Submitted != res.victim.Completed {
		tb.Fatalf("unfinished lanes: bully %+v victim %+v", res.bully, res.victim)
	}
	return res
}

// TestMultijobQoS enforces the scheduler wins through the full
// collective path: fair-share bounds the victim's p99 below FIFO's,
// and strict priority cuts it at least 2×.
func TestMultijobQoS(t *testing.T) {
	fifo := runMultijob(t, pario.IOFIFO, 0)
	fair := runMultijob(t, pario.IOFairShare, 0)
	prio := runMultijob(t, pario.IOPriority, 1)
	t.Logf("victim p99: fifo %v fair %v prio %v", fifo.victim.P99, fair.victim.P99, prio.victim.P99)
	if fair.victim.P99 >= fifo.victim.P99 {
		t.Errorf("fair-share did not bound the victim: p99 %v vs FIFO %v", fair.victim.P99, fifo.victim.P99)
	}
	if prio.victim.P99*2 > fifo.victim.P99 {
		t.Errorf("priority win under 2x: p99 %v vs FIFO %v", prio.victim.P99, fifo.victim.P99)
	}
	// The bully still finishes: QoS reorders the backlog, it does not
	// starve it (its lane drains by the makespan under every policy).
	for _, r := range []mjRun{fifo, fair, prio} {
		if r.bully.Completed != 12 || r.victim.Completed != 16 {
			t.Errorf("lane accounting off: bully %+v victim %+v", r.bully, r.victim)
		}
	}
}

// TestMultijobDeterminism: the same contended mix twice gives
// bit-identical modeled makespans and stats snapshots (latency
// percentiles included) under every policy.
func TestMultijobDeterminism(t *testing.T) {
	for _, pol := range []pario.IOPolicy{pario.IOFIFO, pario.IOFairShare, pario.IOPriority} {
		a := runMultijob(t, pol, 1)
		b := runMultijob(t, pol, 1)
		if a != b {
			t.Fatalf("policy %v: runs differ:\n%+v\n%+v", pol, a, b)
		}
	}
}

// BenchmarkMultijob is the CI trajectory benchmark (BENCH_multijob.json):
// victim p99 and makespan per policy on the contended mix.
func BenchmarkMultijob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fifo := runMultijob(b, pario.IOFIFO, 0)
		fair := runMultijob(b, pario.IOFairShare, 0)
		prio := runMultijob(b, pario.IOPriority, 1)
		b.ReportMetric(float64(fifo.victim.P99.Microseconds()), "fifo-victim-p99-µs")
		b.ReportMetric(float64(fair.victim.P99.Microseconds()), "fair-victim-p99-µs")
		b.ReportMetric(float64(prio.victim.P99.Microseconds()), "prio-victim-p99-µs")
		b.ReportMetric(float64(fifo.makespan.Milliseconds()), "makespan-ms")
	}
}
