// Vectored-I/O acceptance: a sequential scan of a unit-1 declustered
// file — the layout the extent path cannot coalesce, because physically
// adjacent blocks are logically strided — must cut device requests and
// improve modeled throughput once the scan goes through the
// scatter/gather descriptor. These are the ISSUE 2 acceptance numbers,
// enforced as a test so they cannot regress.
package pario_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	pario "repro"
)

// vecScanResult is one measured sequential whole-file scan.
type vecScanResult struct {
	requests int64         // device requests during the read
	elapsed  time.Duration // virtual time of the read
	bytes    int64
}

// runVectoredScan writes a unit-1 declustered S file of `records` 4 KiB
// records over 4 drives and reads it back sequentially with the given
// extent size, returning the read-phase device stats. With StripeUnitFS
// 1, logically consecutive blocks alternate devices, so each extent's
// per-device blocks form one physically contiguous gather run: the
// vectored path issues one request per device per extent, where the
// per-block path (extent 1) issues one per block.
func runVectoredScan(tb testing.TB, records int64, extent int) vecScanResult {
	tb.Helper()
	m := pario.NewMachine(4)
	f, err := m.Volume.Create(pario.Spec{
		Name: "declustered", Org: pario.OrgSequential,
		RecordSize: 4096, BlockRecords: 1, NumRecords: records,
		Placement: pario.PlaceStriped, StripeUnitFS: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	var res vecScanResult
	m.Go("scan", func(p *pario.Proc) {
		w, err := pario.OpenWriter(f, pario.Options{NBufs: 2, IOProcs: 1, ExtentBlocks: 8})
		if err != nil {
			tb.Error(err)
			return
		}
		rec := make([]byte, 4096)
		for r := int64(0); r < records; r++ {
			rec[0] = byte(r)
			if _, err := w.WriteRecord(p, rec); err != nil {
				tb.Error(err)
				return
			}
		}
		if err := w.Close(p); err != nil {
			tb.Error(err)
			return
		}
		for _, d := range m.Disks {
			d.ResetStats()
		}
		start := p.Now()
		r, err := pario.OpenReader(f, pario.Options{NBufs: 2, IOProcs: 1, ExtentBlocks: extent})
		if err != nil {
			tb.Error(err)
			return
		}
		for i := int64(0); ; i++ {
			data, rec, err := r.ReadRecord(p)
			if err == io.EOF {
				break
			}
			if err != nil {
				tb.Error(err)
				return
			}
			if rec != i || data[0] != byte(i) {
				tb.Errorf("record %d: got index %d first byte %d", i, rec, data[0])
				return
			}
		}
		if err := r.Close(p); err != nil {
			tb.Error(err)
			return
		}
		res.elapsed = p.Now() - start
	})
	if err := m.Run(); err != nil {
		tb.Fatal(err)
	}
	for _, d := range m.Disks {
		res.requests += d.Stats().Requests()
	}
	res.bytes = records * 4096
	return res
}

// TestVectoredCoalescingWin enforces the acceptance criteria on a
// sequential read of a unit-1 declustered file (4096 blocks, 1024 per
// device, 4 devices): the vectored path must beat the per-block path by
// ≥4× in device requests and ≥1.5× in modeled throughput, and already
// at ExtentBlocks 8 — one gather run per device per extent — it must
// halve the request count. (With 4 devices an extent of E blocks bounds
// the reduction at E/4, so the ≥4× bar is enforced at extent 32; extent
// 8's exact bound of 2× is enforced alongside it.)
func TestVectoredCoalescingWin(t *testing.T) {
	const records = 4096 // 4096 fs blocks = 1024 per device
	perBlock := runVectoredScan(t, records, 1)
	ext8 := runVectoredScan(t, records, 8)
	ext32 := runVectoredScan(t, records, 32)
	if perBlock.requests == 0 || ext8.requests == 0 || ext32.requests == 0 {
		t.Fatalf("no requests measured: %+v %+v %+v", perBlock, ext8, ext32)
	}
	req8 := float64(perBlock.requests) / float64(ext8.requests)
	req32 := float64(perBlock.requests) / float64(ext32.requests)
	tp8 := perBlock.elapsed.Seconds() / ext8.elapsed.Seconds()
	tp32 := perBlock.elapsed.Seconds() / ext32.elapsed.Seconds()
	t.Logf("requests %d -> %d (ext8, %.1fx) -> %d (ext32, %.1fx)",
		perBlock.requests, ext8.requests, req8, ext32.requests, req32)
	t.Logf("elapsed %v -> %v (ext8, throughput %.2fx) -> %v (ext32, %.2fx)",
		perBlock.elapsed, ext8.elapsed, tp8, ext32.elapsed, tp32)
	if req8 < 1.9 {
		t.Errorf("extent-8 request reduction %.2fx < 1.9x", req8)
	}
	if tp8 < 1.5 {
		t.Errorf("extent-8 throughput improvement %.2fx < 1.5x", tp8)
	}
	if req32 < 4 {
		t.Errorf("extent-32 request reduction %.2fx < 4x", req32)
	}
	if tp32 < 1.5 {
		t.Errorf("extent-32 throughput improvement %.2fx < 1.5x", tp32)
	}
}

// BenchmarkVectoredScan tracks the declustered-scan trajectory: modeled
// MB/s and device requests for the per-block and vectored paths.
func BenchmarkVectoredScan(b *testing.B) {
	for _, extent := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("extent%d", extent), func(b *testing.B) {
			var res vecScanResult
			for i := 0; i < b.N; i++ {
				res = runVectoredScan(b, 4096, extent)
			}
			b.ReportMetric(float64(res.bytes)/1e6/res.elapsed.Seconds(), "vMB/s")
			b.ReportMetric(float64(res.requests), "requests")
		})
	}
}
