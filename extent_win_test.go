// Extent-I/O acceptance: a sequential whole-file read issued through the
// extent path must cut device requests by the coalescing factor and
// improve modeled (virtual-time) throughput. These are the ISSUE 1
// acceptance numbers, enforced as a test so they cannot regress.
package pario_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	pario "repro"
)

// extentScanResult is one measured sequential whole-file scan.
type extentScanResult struct {
	requests int64         // device requests during the read
	elapsed  time.Duration // virtual time of the read
	bytes    int64
}

// runExtentScan writes a striped S file of `records` 4 KiB records over
// 4 drives (stripe unit 8 fs blocks) and reads it back sequentially
// with the given extent size, returning the read-phase device stats.
func runExtentScan(tb testing.TB, records int64, extent int) extentScanResult {
	tb.Helper()
	m := pario.NewMachine(4)
	f, err := m.Volume.Create(pario.Spec{
		Name: "scan", Org: pario.OrgSequential,
		RecordSize: 4096, BlockRecords: 1, NumRecords: records,
		Placement: pario.PlaceStriped, StripeUnitFS: 8,
	})
	if err != nil {
		tb.Fatal(err)
	}
	var res extentScanResult
	m.Go("scan", func(p *pario.Proc) {
		w, err := pario.OpenWriter(f, pario.Options{NBufs: 2, IOProcs: 1, ExtentBlocks: 8})
		if err != nil {
			tb.Error(err)
			return
		}
		rec := make([]byte, 4096)
		for r := int64(0); r < records; r++ {
			rec[0] = byte(r)
			if _, err := w.WriteRecord(p, rec); err != nil {
				tb.Error(err)
				return
			}
		}
		if err := w.Close(p); err != nil {
			tb.Error(err)
			return
		}
		for _, d := range m.Disks {
			d.ResetStats()
		}
		start := p.Now()
		r, err := pario.OpenReader(f, pario.Options{NBufs: 2, IOProcs: 1, ExtentBlocks: extent})
		if err != nil {
			tb.Error(err)
			return
		}
		for i := int64(0); ; i++ {
			data, rec, err := r.ReadRecord(p)
			if err == io.EOF {
				break
			}
			if err != nil {
				tb.Error(err)
				return
			}
			if rec != i || data[0] != byte(i) {
				tb.Errorf("record %d: got index %d first byte %d", i, rec, data[0])
				return
			}
		}
		if err := r.Close(p); err != nil {
			tb.Error(err)
			return
		}
		res.elapsed = p.Now() - start
	})
	if err := m.Run(); err != nil {
		tb.Fatal(err)
	}
	for _, d := range m.Disks {
		res.requests += d.Stats().Requests()
	}
	res.bytes = records * 4096
	return res
}

// TestExtentCoalescingWin enforces the acceptance criteria: on a
// sequential whole-file read of 1024 blocks per device (S organization,
// striped layout, extent 8), device requests drop ≥ 4× versus the
// per-block path and modeled throughput improves ≥ 1.5×.
func TestExtentCoalescingWin(t *testing.T) {
	const records = 4096 // 4096 blocks = 1024 per device
	perBlock := runExtentScan(t, records, 1)
	extent := runExtentScan(t, records, 8)
	if perBlock.requests == 0 || extent.requests == 0 {
		t.Fatalf("no requests measured: %+v %+v", perBlock, extent)
	}
	reqRatio := float64(perBlock.requests) / float64(extent.requests)
	tpRatio := perBlock.elapsed.Seconds() / extent.elapsed.Seconds()
	t.Logf("requests %d -> %d (%.1fx), elapsed %v -> %v (throughput %.2fx)",
		perBlock.requests, extent.requests, reqRatio, perBlock.elapsed, extent.elapsed, tpRatio)
	if reqRatio < 4 {
		t.Errorf("request reduction %.2fx < 4x", reqRatio)
	}
	if tpRatio < 1.5 {
		t.Errorf("throughput improvement %.2fx < 1.5x", tpRatio)
	}
}

// BenchmarkExtentCoalescing compares 1-block and extent transfers on the
// sequential striped scan, reporting modeled MB/s and device requests so
// the coalescing win lands in the benchmark trajectory.
func BenchmarkExtentCoalescing(b *testing.B) {
	for _, extent := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("extent%d", extent), func(b *testing.B) {
			var res extentScanResult
			for i := 0; i < b.N; i++ {
				res = runExtentScan(b, 4096, extent)
			}
			b.ReportMetric(float64(res.bytes)/1e6/res.elapsed.Seconds(), "vMB/s")
			b.ReportMetric(float64(res.requests), "requests")
		})
	}
}
