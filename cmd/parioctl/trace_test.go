package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/probe"
)

// writeTestTrace records a tiny synthetic run — one device servicing two
// writes while a collective exchange overlaps one access — and writes it
// as Chrome trace JSON.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	rec := probe.New()
	dev := rec.Track("dev/d0")
	rank := rec.Track("rank/0")
	io := rec.Track("rank/0/io")
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	rec.Span(dev, "device", "write", ms(0), ms(10), 4096, 0)
	rec.Span(dev, "device", "write", ms(12), ms(20), 4096, 0)
	ex := rec.Span(rank, "collective", "chunk.exchange", ms(0), ms(8), 0, 0)
	rec.Span(io, "collective", "chunk.access", ms(4), ms(20), 8192, ex)
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTraceSubcommand(t *testing.T) {
	path := writeTestTrace(t)
	out := ctl(t, nil, "trace", path)
	for _, want := range []string{
		"4 spans on 3 tracks",
		"device/write",
		"collective/chunk.exchange",
		"dev/d0",
		"overlap 4ms", // exchange [0,8) ∩ access [4,20) = [4,8)
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace summary missing %q:\n%s", want, out)
		}
	}
}

func TestTraceSubcommandErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run("trace", []string{}, nil, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run("trace", []string{filepath.Join(t.TempDir(), "nope.json")}, nil, &out); err == nil {
		t.Fatal("missing trace file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("trace", []string{bad}, nil, &out); err == nil {
		t.Fatal("malformed trace accepted")
	}
}
