// Command parioctl manages parallel-file volumes persisted to host
// directories — the operating-system utilities the paper's §2 requires
// ("interactive management of user programs and files"). Sequential
// tools see parallel files through the global view, exactly as the paper
// prescribes.
//
// Usage:
//
//	parioctl init   -vol DIR -devices N
//	parioctl ls     -vol DIR
//	parioctl info   -vol DIR -name FILE
//	parioctl create -vol DIR -name FILE -org S|PS|IS|SS|GDA|PDA
//	                -records N -recsize BYTES [-blockrecs N] [-parts P]
//	parioctl put    -vol DIR -name FILE            (stdin -> global view)
//	parioctl cat    -vol DIR -name FILE            (global view -> stdout)
//	parioctl rm     -vol DIR -name FILE
//	parioctl convert -vol DIR -src FILE -dst FILE -org ORG [-parts P]
//	parioctl fsck   -vol DIR
//	parioctl df     -vol DIR
//	parioctl trace  [-top N] FILE     (summarize a pariosim -trace file)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	pario "repro"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/pfs"
)

func usage() {
	fmt.Fprintln(os.Stderr, "parioctl: subcommands: init, ls, info, create, put, cat, rm, convert, fsck, df, trace")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	if err := run(os.Args[1], os.Args[2:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "parioctl: %v\n", err)
		os.Exit(1)
	}
}

// run executes one subcommand; factored out of main for testability.
func run(sub string, args []string, stdin io.Reader, stdout io.Writer) error {
	if sub == "trace" { // operates on a trace file, not a volume
		return traceCmd(args, stdout)
	}
	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	vol := fs.String("vol", "", "volume directory")
	name := fs.String("name", "", "file name")
	src := fs.String("src", "", "source file (convert)")
	dst := fs.String("dst", "", "destination file (convert)")
	orgFlag := fs.String("org", "S", "organization: S PS IS SS GDA PDA")
	records := fs.Int64("records", 0, "file length in records")
	recsize := fs.Int("recsize", 0, "record size in bytes")
	blockrecs := fs.Int("blockrecs", 0, "records per block (0 = fill one fs block)")
	parts := fs.Int("parts", 0, "partitions / processes")
	devices := fs.Int("devices", 4, "device count (init)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *vol == "" {
		return fmt.Errorf("missing -vol")
	}

	switch sub {
	case "init":
		disks := make([]*pario.Disk, *devices)
		for i := range disks {
			disks[i] = pario.NewDisk(pario.DiskConfig{Name: fmt.Sprintf("d%d", i)})
		}
		v, err := pario.NewVolume(disks)
		if err != nil {
			return err
		}
		return pario.SaveVolume(*vol, disks, v)
	case "ls":
		_, v, err := load(*vol)
		if err != nil {
			return err
		}
		for _, n := range v.Files() {
			f, err := v.Lookup(n)
			if err != nil {
				return err
			}
			sp := f.Spec()
			fmt.Fprintf(stdout, "%-24s %-4s %8d recs x %-6d B  blocks=%d parts=%d %s\n",
				n, sp.Org, sp.NumRecords, sp.RecordSize,
				f.Mapper().NumBlocks(), f.Parts(), sp.Placement)
		}
		return nil
	case "info":
		_, v, err := load(*vol)
		if err != nil {
			return err
		}
		f, err := v.Lookup(*name)
		if err != nil {
			return err
		}
		sp := f.Spec()
		m := f.Mapper()
		fmt.Fprintf(stdout, "name:         %s\n", sp.Name)
		fmt.Fprintf(stdout, "organization: %s (%s)\n", sp.Org, sp.Category)
		fmt.Fprintf(stdout, "records:      %d x %d bytes\n", m.NumRecords(), m.RecordSize())
		fmt.Fprintf(stdout, "blocks:       %d x %d records (%d fs blocks each)\n",
			m.NumBlocks(), m.BlockRecords(), m.FSPerBlock())
		fmt.Fprintf(stdout, "partitions:   %d\n", f.Parts())
		fmt.Fprintf(stdout, "placement:    %s (%s)\n", sp.Placement, f.Layout().Name())
		return nil
	case "create":
		disks, v, err := load(*vol)
		if err != nil {
			return err
		}
		org, err := parseOrg(*orgFlag)
		if err != nil {
			return err
		}
		if _, err := v.Create(pario.Spec{
			Name: *name, Org: org, RecordSize: *recsize,
			BlockRecords: *blockrecs, NumRecords: *records, Parts: *parts,
		}); err != nil {
			return err
		}
		return pario.SaveVolume(*vol, disks, v)
	case "put":
		disks, v, err := load(*vol)
		if err != nil {
			return err
		}
		f, err := v.Lookup(*name)
		if err != nil {
			return err
		}
		ctx := pario.NewWall()
		w, err := pario.OpenGlobalWriter(f, ctx, pario.Options{})
		if err != nil {
			return err
		}
		if _, err := io.Copy(w, stdin); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		return pario.SaveVolume(*vol, disks, v)
	case "cat":
		_, v, err := load(*vol)
		if err != nil {
			return err
		}
		f, err := v.Lookup(*name)
		if err != nil {
			return err
		}
		r, err := pario.OpenGlobalReader(f, pario.NewWall())
		if err != nil {
			return err
		}
		_, err = io.Copy(stdout, r)
		return err
	case "rm":
		disks, v, err := load(*vol)
		if err != nil {
			return err
		}
		if err := v.Remove(*name); err != nil {
			return err
		}
		return pario.SaveVolume(*vol, disks, v)
	case "convert":
		disks, v, err := load(*vol)
		if err != nil {
			return err
		}
		f, err := v.Lookup(*src)
		if err != nil {
			return err
		}
		org, err := parseOrg(*orgFlag)
		if err != nil {
			return err
		}
		p := *parts
		if p == 0 {
			p = f.Parts()
		}
		if _, err := convert.ToOrganization(pario.NewWall(), v, f, *dst, org, p, core.Options{}); err != nil {
			return err
		}
		return pario.SaveVolume(*vol, disks, v)
	case "fsck":
		_, v, err := load(*vol)
		if err != nil {
			return err
		}
		rep := v.Check()
		fmt.Fprint(stdout, rep.String())
		if !rep.OK() {
			return fmt.Errorf("volume inconsistent")
		}
		return nil
	case "df":
		_, v, err := load(*vol)
		if err != nil {
			return err
		}
		used, free := v.Used(), v.Free()
		bs := int64(v.Store().BlockSize())
		fmt.Fprintf(stdout, "%-8s %12s %12s %12s\n", "device", "used", "free", "capacity")
		for dev := range used {
			fmt.Fprintf(stdout, "d%-7d %10dKB %10dKB %10dKB\n", dev,
				used[dev]*bs/1024, free[dev]*bs/1024, (used[dev]+free[dev])*bs/1024)
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", sub)
	}
}

// load opens a volume image.
func load(dir string) ([]*pario.Disk, *pario.Volume, error) {
	disks, v, err := pario.LoadVolume(dir, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("open volume %s: %w", dir, err)
	}
	return disks, v, nil
}

// parseOrg maps the paper's abbreviations to organizations.
func parseOrg(s string) (pario.Organization, error) {
	switch s {
	case "S":
		return pfs.OrgSequential, nil
	case "PS":
		return pfs.OrgPartitioned, nil
	case "IS":
		return pfs.OrgInterleaved, nil
	case "SS":
		return pfs.OrgSelfScheduled, nil
	case "GDA":
		return pfs.OrgGlobalDirect, nil
	case "PDA":
		return pfs.OrgPartitionedDirect, nil
	default:
		return 0, fmt.Errorf("unknown organization %q", s)
	}
}
