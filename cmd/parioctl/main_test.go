package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// ctl runs a subcommand against a volume dir, failing the test on error.
func ctl(t *testing.T, stdin []byte, sub string, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(sub, args, bytes.NewReader(stdin), &out); err != nil {
		t.Fatalf("parioctl %s %v: %v", sub, args, err)
	}
	return out.String()
}

func TestCLILifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "vol")

	ctl(t, nil, "init", "-vol", dir, "-devices", "3")

	ctl(t, nil, "create", "-vol", dir, "-name", "data", "-org", "PS",
		"-records", "64", "-recsize", "128", "-parts", "2")

	// Round-trip payload through put/cat (the global view).
	payload := bytes.Repeat([]byte("parallel files! "), 512) // 8192 = 64*128
	ctl(t, payload, "put", "-vol", dir, "-name", "data")
	got := ctl(t, nil, "cat", "-vol", dir, "-name", "data")
	if got != string(payload) {
		t.Fatalf("cat returned %d bytes, want %d (mismatch)", len(got), len(payload))
	}

	ls := ctl(t, nil, "ls", "-vol", dir)
	if !strings.Contains(ls, "data") || !strings.Contains(ls, "PS") {
		t.Fatalf("ls = %q", ls)
	}

	info := ctl(t, nil, "info", "-vol", dir, "-name", "data")
	for _, want := range []string{"organization: PS", "records:      64 x 128 bytes", "partitions:   2"} {
		if !strings.Contains(info, want) {
			t.Fatalf("info missing %q:\n%s", want, info)
		}
	}

	// Convert PS -> IS; the converted file must cat identically.
	ctl(t, nil, "convert", "-vol", dir, "-src", "data", "-dst", "data-is", "-org", "IS", "-parts", "2")
	got2 := ctl(t, nil, "cat", "-vol", dir, "-name", "data-is")
	if got2 != string(payload) {
		t.Fatal("converted file differs")
	}

	fsck := ctl(t, nil, "fsck", "-vol", dir)
	if !strings.Contains(fsck, "consistent") {
		t.Fatalf("fsck = %q", fsck)
	}

	df := ctl(t, nil, "df", "-vol", dir)
	if !strings.Contains(df, "device") || !strings.Contains(df, "d0") {
		t.Fatalf("df = %q", df)
	}

	ctl(t, nil, "rm", "-vol", dir, "-name", "data")
	ls2 := ctl(t, nil, "ls", "-vol", dir)
	if strings.Contains(ls2, "data ") {
		t.Fatalf("rm left file behind: %q", ls2)
	}
}

func TestCLIErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "vol")
	var out bytes.Buffer
	if err := run("ls", []string{"-vol", dir}, nil, &out); err == nil {
		t.Fatal("ls on missing volume accepted")
	}
	if err := run("ls", []string{}, nil, &out); err == nil {
		t.Fatal("missing -vol accepted")
	}
	if err := run("bogus", []string{"-vol", dir}, nil, &out); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	ctl(t, nil, "init", "-vol", dir)
	if err := run("create", []string{"-vol", dir, "-name", "x", "-org", "WAT", "-records", "1", "-recsize", "8"}, nil, &out); err == nil {
		t.Fatal("bad organization accepted")
	}
	if err := run("cat", []string{"-vol", dir, "-name", "nope"}, nil, &out); err == nil {
		t.Fatal("cat of missing file accepted")
	}
}

func TestParseOrgAll(t *testing.T) {
	for _, s := range []string{"S", "PS", "IS", "SS", "GDA", "PDA"} {
		if _, err := parseOrg(s); err != nil {
			t.Fatalf("parseOrg(%s): %v", s, err)
		}
	}
	if _, err := parseOrg("nope"); err == nil {
		t.Fatal("bad org accepted")
	}
}
