package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/probe"
	"repro/internal/stats"
)

// traceCmd summarizes a Chrome trace-event JSON file recorded by the
// flight recorder (`pariosim -trace out.json`): the hottest span groups,
// per-device utilization, and the exchange/access overlap the pipelined
// collective schedule exists to create.
func traceCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	top := fs.Int("top", 12, "span groups to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: parioctl trace [-top N] FILE")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := probe.ReadChromeTrace(f)
	if err != nil {
		return fmt.Errorf("parse %s: %w", fs.Arg(0), err)
	}

	spans := rec.Spans()
	var lo, hi time.Duration
	for i, s := range spans {
		if i == 0 || s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	fmt.Fprintf(stdout, "%s: %d spans on %d tracks, virtual window %v .. %v\n\n",
		fs.Arg(0), len(spans), len(rec.Tracks()), lo, hi)

	// Hottest span groups: aggregate by cat/name over the whole trace.
	type group struct {
		key        string
		n          int
		total, max time.Duration
		bytes      int64
	}
	byKey := map[string]*group{}
	for _, s := range spans {
		key := s.Cat + "/" + s.Name
		g := byKey[key]
		if g == nil {
			g = &group{key: key}
			byKey[key] = g
		}
		g.n++
		d := s.End - s.Start
		g.total += d
		if d > g.max {
			g.max = d
		}
		g.bytes += s.Bytes
	}
	groups := make([]*group, 0, len(byKey))
	for _, g := range byKey {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].total != groups[j].total {
			return groups[i].total > groups[j].total
		}
		return groups[i].key < groups[j].key
	})
	if len(groups) > *top {
		groups = groups[:*top]
	}
	t := stats.NewTable("top span groups by total virtual time",
		"span", "count", "total", "mean", "max", "bytes")
	for _, g := range groups {
		t.AddRow(g.key, g.n, g.total.Round(time.Microsecond),
			(g.total / time.Duration(g.n)).Round(time.Microsecond),
			g.max.Round(time.Microsecond), g.bytes)
	}
	fmt.Fprintln(stdout, t.String())

	// Per-device utilization: the dev/<name> service tracks (queue-wait
	// tracks, dev/<name>/q, are listed separately by the full table).
	ut := stats.NewTable("device utilization", "device", "spans", "busy", "util", "bytes")
	devRows := 0
	for _, u := range rec.Usage() {
		if u.Spans == 0 || !strings.Contains(u.Name, "dev/") || strings.HasSuffix(u.Name, "/q") {
			continue
		}
		ut.AddRow(u.Name, u.Spans, u.Busy.Round(time.Microsecond), fmt.Sprintf("%.3f", u.Util), u.Bytes)
		devRows++
	}
	if devRows > 0 {
		fmt.Fprintln(stdout, ut.String())
	}

	// Exchange/access overlap: virtual time with a collective exchange
	// and a collective device access concurrently in flight — the
	// quantity the chunked two-phase schedule maximizes.
	isExchange := func(s probe.Span) bool {
		return s.Cat == "collective" && strings.Contains(s.Name, "exchange")
	}
	isAccess := func(s probe.Span) bool {
		return s.Cat == "collective" && strings.Contains(s.Name, "access")
	}
	ex, acc := rec.UnionBusy(isExchange), rec.UnionBusy(isAccess)
	if ex > 0 || acc > 0 {
		ov := rec.OverlapBusy(isExchange, isAccess)
		fmt.Fprintf(stdout, "collective exchange busy %v, access busy %v, overlap %v",
			ex.Round(time.Microsecond), acc.Round(time.Microsecond), ov.Round(time.Microsecond))
		if m := minDur(ex, acc); m > 0 {
			fmt.Fprintf(stdout, " (%.0f%% of the shorter phase)", 100*ov.Seconds()/m.Seconds())
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
