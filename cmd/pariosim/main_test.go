package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestScenarios(t *testing.T) {
	for _, sc := range []string{"seek", "service", "stripe", "extent", "noncontig", "collective", "strategy", "contended", "pipeline", "replay", "profile", "multijob", "scale"} {
		var out bytes.Buffer
		if err := run(sc, "", &out); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s produced no output", sc)
		}
	}
}

func TestAllScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run("all", "", &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Seek curve", "service time", "striped scan", "Extent coalescing", "Vectored I/O", "Collective I/O", "Strategy selection", "Contention-aware", "Pipelined collective", "Plan capture & replay", "Cross-layer profiles", "Multi-job I/O service", "Engine scaling"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestSeekTableMonotone(t *testing.T) {
	var out bytes.Buffer
	if err := run("seek", "", &out); err != nil {
		t.Fatal(err)
	}
	// The longest seek row (899 cylinders) must appear.
	if !strings.Contains(out.String(), "899") {
		t.Fatalf("full-stroke row missing:\n%s", out.String())
	}
}

func TestUnknownScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run("wat", "", &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run("profile", "wat", &out); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestProfileFlagSelects(t *testing.T) {
	var out bytes.Buffer
	if err := run("profile", "tuned", &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "\ntuned ") || strings.Contains(s, "\npaper ") {
		t.Fatalf("-profile tuned did not narrow the table:\n%s", s)
	}
}
