// Command pariosim explores the device model: it prints the seek curve,
// single-drive service times, and a striping demonstration for the
// default 1989-class drive, so the timing assumptions behind every
// experiment are inspectable. With -trace the run records every scenario
// through the flight recorder and writes a Chrome trace-event JSON file
// (load in Perfetto or chrome://tracing); -metrics prints the recorder's
// metrics snapshot and per-track utilization tables after the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	pario "repro"
	"repro/internal/blockio"
	"repro/internal/collective"
	"repro/internal/device"
	"repro/internal/mpp"
	"repro/internal/pfs"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stats"
)

// rec is the run-wide flight recorder, non-nil when -trace or -metrics
// is given. Every scenario attaches its engines, drives, stores and rank
// groups under a distinct scope prefix so tracks from different sweep
// configurations land on separate timeline rows.
var rec *probe.Recorder

// attach wires the recorder across one scenario engine's layers under
// the given scope; a no-op without -trace/-metrics.
func attach(scope string, e *sim.Engine, disks []*device.Disk, store *blockio.Direct) {
	if rec == nil {
		return
	}
	rec.SetScope(scope)
	e.SetProbe(rec)
	for _, d := range disks {
		d.SetProbe(rec)
	}
	if store != nil {
		store.SetProbe(rec)
	}
}

// attachGroup adds a rank group's per-rank tracks (under the scope set
// by the preceding attach call).
func attachGroup(g *mpp.Group, prefix string) {
	if rec != nil {
		g.SetProbe(rec, prefix)
	}
}

// attachMachine is attach for the pario.Machine facade; rank groups
// launched with GoRanks afterwards attach automatically.
func attachMachine(scope string, m *pario.Machine) {
	if rec == nil {
		return
	}
	rec.SetScope(scope)
	m.SetProbe(rec)
}

func main() {
	scenario := flag.String("scenario", "all", "one of: seek, service, stripe, extent, noncontig, collective, strategy, contended, pipeline, replay, profile, multijob, scale, all")
	profile := flag.String("profile", "", "profile for the profile scenario: tuned, paper, or empty for both")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	tracePath := flag.String("trace", "", "record the run and write Chrome trace-event JSON (Perfetto / chrome://tracing) to this file")
	metrics := flag.Bool("metrics", false, "print the flight recorder's metrics snapshot and per-track utilization after the run")
	flag.Parse()
	if *tracePath != "" || *metrics {
		rec = probe.New()
	}
	if err := profiledRun(*scenario, *profile, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintf(os.Stderr, "pariosim: %v\n", err)
		os.Exit(1)
	}
	if err := exportRecording(*tracePath, *metrics, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pariosim: %v\n", err)
		os.Exit(1)
	}
}

// exportRecording writes the trace file and/or prints the metrics and
// utilization tables once the scenarios have run.
func exportRecording(tracePath string, metrics bool, w io.Writer) error {
	if rec == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d spans on %d tracks to %s\n", len(rec.Spans()), len(rec.Tracks()), tracePath)
	}
	if metrics {
		fmt.Fprintln(w, rec.Metrics().Table().String())
		fmt.Fprintln(w, rec.UtilizationTable().String())
	}
	return nil
}

// profiledRun wraps run with the optional pprof captures, so the
// simulator's own hot paths (the scale scenario, above all) can be
// profiled without a test harness.
func profiledRun(scenario, profile, cpuprofile, memprofile string) error {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := run(scenario, profile, os.Stdout); err != nil {
		return err
	}
	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // report live heap, not transient garbage
		return pprof.WriteHeapProfile(f)
	}
	return nil
}

// run executes one scenario; factored out of main for testability.
func run(scenario, profile string, w io.Writer) error {
	switch scenario {
	case "seek":
		return seekTable(w)
	case "service":
		return serviceTable(w)
	case "stripe":
		return stripeDemo(w)
	case "extent":
		return extentDemo(w)
	case "noncontig":
		return noncontigDemo(w)
	case "collective":
		return collectiveDemo(w)
	case "strategy":
		return strategyDemo(w)
	case "contended":
		return contendedDemo(w)
	case "pipeline":
		return pipelineDemo(w)
	case "replay":
		return replayDemo(w)
	case "profile":
		return profileDemo(w, profile)
	case "multijob":
		return multijobDemo(w)
	case "scale":
		return scaleDemo(w)
	case "all":
		if err := seekTable(w); err != nil {
			return err
		}
		if err := serviceTable(w); err != nil {
			return err
		}
		if err := stripeDemo(w); err != nil {
			return err
		}
		if err := extentDemo(w); err != nil {
			return err
		}
		if err := noncontigDemo(w); err != nil {
			return err
		}
		if err := collectiveDemo(w); err != nil {
			return err
		}
		if err := strategyDemo(w); err != nil {
			return err
		}
		if err := contendedDemo(w); err != nil {
			return err
		}
		if err := pipelineDemo(w); err != nil {
			return err
		}
		if err := replayDemo(w); err != nil {
			return err
		}
		if err := profileDemo(w, profile); err != nil {
			return err
		}
		if err := multijobDemo(w); err != nil {
			return err
		}
		return scaleDemo(w)
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
}

// seekTable prints seek time versus distance for the default drive.
func seekTable(w io.Writer) error {
	e := sim.NewEngine()
	d := device.New(device.Config{Engine: e})
	attach("seek", e, []*device.Disk{d}, nil)
	geom := d.Geometry()
	t := stats.NewTable("Seek curve (default 1989 drive, √distance model)",
		"distance (cylinders)", "seek time")
	bs := geom.BlockSize
	var rows []struct {
		dist int
		dur  time.Duration
	}
	e.Go("probe", func(p *sim.Proc) {
		buf := make([]byte, bs)
		prevCyl := 0
		for _, dist := range []int{0, 1, 10, 100, 400, geom.Cylinders - 1} {
			target := prevCyl // measure by issuing a request at a known distance
			_ = target
			// Issue a request to cylinder `dist` from cylinder 0: first
			// rehome to 0, then measure.
			_ = d.ReadBlock(p, 0, buf)
			t0 := p.Now()
			_ = d.ReadBlock(p, int64(dist)*int64(geom.BlocksPerCyl), buf)
			rows = append(rows, struct {
				dist int
				dur  time.Duration
			}{dist, p.Now() - t0})
		}
	})
	if err := e.Run(); err != nil {
		return err
	}
	for _, r := range rows {
		t.AddRow(r.dist, r.dur)
	}
	t.Note = "includes fixed overhead + half-rotation + one-block transfer"
	fmt.Fprintln(w, t.String())
	return nil
}

// serviceTable prints the service-time decomposition for common sizes.
func serviceTable(w io.Writer) error {
	timing := device.DefaultTiming1989()
	t := stats.NewTable("Single-request service time, no seek (default drive)",
		"transfer size", "overhead", "rotation/2", "transfer", "total")
	for _, size := range []int{4096, 16384, 65536} {
		tr := time.Duration(float64(size) / timing.TransferRate * float64(time.Second))
		total := timing.Overhead + timing.RotationPeriod/2 + tr
		t.AddRow(fmt.Sprintf("%d KiB", size/1024), timing.Overhead, timing.RotationPeriod/2, tr, total)
	}
	fmt.Fprintln(w, t.String())
	return nil
}

// stripeDemo shows aggregate bandwidth of a striped raw scan.
func stripeDemo(w io.Writer) error {
	t := stats.NewTable("Raw striped scan of 256 blocks (4 KiB), read-ahead = device count",
		"devices", "elapsed", "MB/s")
	for _, devs := range []int{1, 2, 4, 8} {
		e := sim.NewEngine()
		disks := make([]*device.Disk, devs)
		for i := range disks {
			disks[i] = device.New(device.Config{Engine: e, Name: fmt.Sprintf("d%d", i)})
		}
		store, err := blockio.NewDirect(disks)
		if err != nil {
			return err
		}
		attach(fmt.Sprintf("stripe/%d", devs), e, disks, store)
		set, err := blockio.NewSet(store, blockio.NewStriped(devs, 1), make([]int64, devs))
		if err != nil {
			return err
		}
		const blocks = 256
		e.Go("main", func(p *sim.Proc) {
			var g sim.Group
			next := int64(0)
			for w := 0; w < devs; w++ {
				g.Spawn(p.Engine(), "reader", func(c *sim.Proc) {
					buf := make([]byte, store.BlockSize())
					for {
						if next >= blocks {
							return
						}
						b := next
						next++
						if err := set.ReadBlock(c, b, buf); err != nil {
							return
						}
					}
				})
			}
			g.Wait(p)
		})
		if err := e.Run(); err != nil {
			return err
		}
		bytes := int64(blocks) * int64(store.BlockSize())
		t.AddRow(devs, e.Now(), stats.MBps(bytes, e.Now()))
	}
	fmt.Fprintln(w, t.String())
	return nil
}

// extentDemo shows request coalescing: the same sequential scan issued
// block-at-a-time versus as extent (multi-block) runs via ReadRange.
func extentDemo(w io.Writer) error {
	const devs = 4
	const blocks = 1024 // 256 per device
	t := stats.NewTable("Extent coalescing: sequential scan of 1024 blocks (4 KiB) on 4 devices, stripe unit 8",
		"extent (blocks)", "requests", "elapsed", "MB/s")
	for _, extent := range []int64{1, 8, 32} {
		e := sim.NewEngine()
		disks := make([]*device.Disk, devs)
		for i := range disks {
			disks[i] = device.New(device.Config{Engine: e, Name: fmt.Sprintf("d%d", i)})
		}
		store, err := blockio.NewDirect(disks)
		if err != nil {
			return err
		}
		attach(fmt.Sprintf("extent/%d", extent), e, disks, store)
		set, err := blockio.NewSet(store, blockio.NewStriped(devs, 8), make([]int64, devs))
		if err != nil {
			return err
		}
		var scanErr error
		e.Go("scan", func(p *sim.Proc) {
			buf := make([]byte, extent*int64(store.BlockSize()))
			for b := int64(0); b < blocks; b += extent {
				n := extent
				if b+n > blocks {
					n = blocks - b
				}
				if scanErr = set.ReadRange(p, b, n, buf[:n*int64(store.BlockSize())]); scanErr != nil {
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			return err
		}
		if scanErr != nil {
			return scanErr
		}
		var requests int64
		for _, d := range disks {
			requests += d.Stats().Requests()
		}
		bytes := int64(blocks) * int64(store.BlockSize())
		t.AddRow(extent, requests, e.Now(), stats.MBps(bytes, e.Now()))
	}
	t.Note = "one queued request per physically contiguous run: overhead+seek+rotation paid once per extent"
	fmt.Fprintln(w, t.String())
	return nil
}

// noncontigDemo shows scatter/gather coalescing on the layout extent I/O
// cannot serve: a unit-1 declustered file, where logically consecutive
// blocks alternate devices. Scanned block-at-a-time every block is its
// own request; scanned through a vectored descriptor (Set.ReadVec) each
// window collapses to one gather request per device.
func noncontigDemo(w io.Writer) error {
	const devs = 4
	const blocks = 1024 // 256 per device
	t := stats.NewTable("Vectored I/O: sequential scan of a unit-1 declustered file, 1024 blocks (4 KiB) on 4 devices",
		"window (blocks)", "requests", "elapsed", "MB/s", "speedup")
	var base time.Duration
	for _, window := range []int64{1, 8, 32} {
		e := sim.NewEngine()
		disks := make([]*device.Disk, devs)
		for i := range disks {
			disks[i] = device.New(device.Config{Engine: e, Name: fmt.Sprintf("d%d", i)})
		}
		store, err := blockio.NewDirect(disks)
		if err != nil {
			return err
		}
		attach(fmt.Sprintf("noncontig/%d", window), e, disks, store)
		set, err := blockio.NewSet(store, blockio.NewStriped(devs, 1), make([]int64, devs))
		if err != nil {
			return err
		}
		var scanErr error
		e.Go("scan", func(p *sim.Proc) {
			bs := int64(store.BlockSize())
			buf := make([]byte, window*bs)
			for b := int64(0); b < blocks; b += window {
				n := window
				if b+n > blocks {
					n = blocks - b
				}
				if scanErr = set.ReadVec(p, blockio.Vec{{Block: b, N: n}}, buf[:n*bs]); scanErr != nil {
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			return err
		}
		if scanErr != nil {
			return scanErr
		}
		var requests int64
		for _, d := range disks {
			requests += d.Stats().Requests()
		}
		if window == 1 {
			base = e.Now()
		}
		bytes := int64(blocks) * int64(store.BlockSize())
		t.AddRow(window, requests, e.Now(), stats.MBps(bytes, e.Now()),
			fmt.Sprintf("%.2fx", float64(base)/float64(e.Now())))
	}
	t.Note = "unit-1 striping defeats extent coalescing (physically adjacent blocks are logically strided);\nthe scatter/gather descriptor merges them anyway: one gather request per device per window"
	fmt.Fprintln(w, t.String())
	return nil
}

// collectiveDemo shows two-phase collective I/O: an 8-rank strided
// checkpoint write of a unit-1 declustered file, issued independently
// (each rank one vectored write of its own records — physically strided,
// so nothing merges) versus collectively (ranks exchange with aggregator
// ranks over a 100 MB/s interconnect, each aggregator writes one
// contiguous file domain as a cross-file batch).
func collectiveDemo(w io.Writer) error {
	const (
		devs    = 4
		ranks   = 8
		records = 1024 // 4 KiB records = fs blocks
	)
	t := stats.NewTable("Collective I/O: 8-rank strided checkpoint, 1024 records (4 KiB) on 4 devices, unit-1 declustered",
		"mode", "requests", "elapsed", "MB/s", "speedup")
	var base time.Duration
	for _, collectiveMode := range []bool{false, true} {
		e := sim.NewEngine()
		disks := make([]*device.Disk, devs)
		for i := range disks {
			disks[i] = device.New(device.Config{Engine: e, Name: fmt.Sprintf("d%d", i)})
		}
		store, err := blockio.NewDirect(disks)
		if err != nil {
			return err
		}
		scope := "collective/independent"
		if collectiveMode {
			scope = "collective/two-phase"
		}
		attach(scope, e, disks, store)
		vol := pfs.NewVolume(store)
		f, err := vol.Create(pfs.Spec{
			Name: "ckpt", Org: pfs.OrgGlobalDirect,
			RecordSize: 4096, BlockRecords: 1, NumRecords: records,
			Placement: pfs.PlaceStriped, StripeUnitFS: 1,
		})
		if err != nil {
			return err
		}
		group, err := vol.OpenGroup("ckpt")
		if err != nil {
			return err
		}
		col, err := collective.Open(group, ranks, collective.Options{})
		if err != nil {
			return err
		}
		var rankErr error
		g, _ := mpp.Run(e, ranks, "rank", func(p *mpp.Proc) {
			rank := int64(p.Rank())
			var vec blockio.Vec
			var off int64
			for b := rank; b < records; b += ranks {
				vec = append(vec, blockio.VecSeg{Block: b, N: 1, BufOff: off})
				off += 4096
			}
			buf := make([]byte, off)
			var err error
			if collectiveMode {
				err = col.WriteAll(p, []collective.VecReq{{File: 0, Vec: vec}}, buf)
			} else {
				err = f.Set().WriteVec(p.Proc, vec, buf)
			}
			if err != nil && rankErr == nil {
				rankErr = err
			}
		})
		g.SetLink(10*time.Microsecond, 100e6)
		attachGroup(g, "rank")
		if err := e.Run(); err != nil {
			return err
		}
		if rankErr != nil {
			return rankErr
		}
		var requests int64
		for _, d := range disks {
			requests += d.Stats().Requests()
		}
		mode := "independent"
		if collectiveMode {
			mode = "collective"
		} else {
			base = e.Now()
		}
		bytes := int64(records) * 4096
		t.AddRow(mode, requests, e.Now(), stats.MBps(bytes, e.Now()),
			fmt.Sprintf("%.2fx", float64(base)/float64(e.Now())))
	}
	t.Note = "two-phase: ranks ship pieces to aggregator ranks (modeled 100 MB/s link), each aggregator\nwrites one contiguous file domain as a single cross-file gather per device"
	fmt.Fprintln(w, t.String())
	return nil
}

// strategyDemo sweeps access density × rank count × link bandwidth over
// the strategy selector: rank-disjoint collective writes executed under
// each fixed strategy (vectored, sieved, two-phase) and under
// StrategyAuto, which prices the routes per call. Dense partition-local
// patterns favor sieving, sparse ones vectored I/O, interleaved ones the
// two-phase exchange — until link congestion inverts that trade; the
// route column shows what Auto picked.
func strategyDemo(w io.Writer) error {
	const (
		devs   = 4
		blocks = 1024 // 4 KiB blocks, 256 per device
	)
	t := stats.NewTable("Strategy selection: rank-disjoint collective writes, 1024 blocks (4 KiB) on 4 devices",
		"pattern", "ranks", "link", "vectored", "sieved", "two-phase", "auto", "route")
	type sweepCfg struct {
		pattern   string
		ranks     int
		congested bool
	}
	buildVec := func(c sweepCfg, rank int) blockio.Vec {
		var vec blockio.Vec
		var off int64
		add := func(b, n int64) {
			vec = append(vec, blockio.VecSeg{Block: b, N: n, BufOff: off})
			off += n * 4096
		}
		slice := int64(blocks / c.ranks)
		base := int64(rank) * slice
		switch c.pattern {
		case "dense": // every other block of the rank's partition slice
			for i := int64(0); i < slice/2; i++ {
				add(base+2*i, 1)
			}
		case "sparse": // 8-block runs every 64 blocks of the slice
			for b := int64(0); b+8 <= slice; b += 64 {
				add(base+b, 8)
			}
		default: // interleaved: blocks ≡ rank (mod ranks), file-wide
			for b := int64(rank); b < blocks; b += int64(c.ranks) {
				add(b, 1)
			}
		}
		return vec
	}
	one := func(c sweepCfg, strat blockio.Strategy, scope string) (time.Duration, string, error) {
		e := sim.NewEngine()
		disks := make([]*device.Disk, devs)
		for i := range disks {
			disks[i] = device.New(device.Config{Engine: e, Name: fmt.Sprintf("d%d", i)})
		}
		store, err := blockio.NewDirect(disks)
		if err != nil {
			return 0, "", err
		}
		attach(scope, e, disks, store)
		vol := pfs.NewVolume(store)
		spec := pfs.Spec{Name: "sweep", RecordSize: 4096, BlockRecords: 1, NumRecords: blocks}
		if c.pattern == "interleaved" {
			spec.Org, spec.Placement, spec.StripeUnitFS = pfs.OrgGlobalDirect, pfs.PlaceStriped, 1
		} else {
			spec.Org, spec.Parts = pfs.OrgPartitioned, devs
		}
		if _, err := vol.Create(spec); err != nil {
			return 0, "", err
		}
		group, err := vol.OpenGroup("sweep")
		if err != nil {
			return 0, "", err
		}
		col, err := collective.Open(group, c.ranks, collective.Options{Strategy: strat})
		if err != nil {
			return 0, "", err
		}
		var rankErr error
		g, _ := mpp.Run(e, c.ranks, "rank", func(p *mpp.Proc) {
			vec := buildVec(c, p.Rank())
			var total int64
			for _, sg := range vec {
				total += sg.N
			}
			buf := make([]byte, total*4096)
			if err := col.WriteAll(p, []collective.VecReq{{File: 0, Vec: vec}}, buf); err != nil && rankErr == nil {
				rankErr = err
			}
		})
		if c.congested {
			g.SetLink(100*time.Microsecond, 2e6)
			g.SetBisection(1e6)
		} else {
			g.SetLink(10*time.Microsecond, 100e6)
		}
		attachGroup(g, "rank")
		if err := e.Run(); err != nil {
			return 0, "", err
		}
		return e.Now(), col.LastRoute(), rankErr
	}
	for _, pattern := range []string{"dense", "sparse", "interleaved"} {
		for _, ranks := range []int{4, 8} {
			for _, congested := range []bool{false, true} {
				c := sweepCfg{pattern, ranks, congested}
				link := "fast"
				if congested {
					link = "congested"
				}
				row := []any{pattern, ranks, link}
				var route string
				for _, strat := range []blockio.Strategy{
					blockio.StrategyVectored, blockio.StrategySieved,
					blockio.StrategyCollective, blockio.StrategyAuto,
				} {
					scope := fmt.Sprintf("strategy/%s-r%d-%s/%v", pattern, ranks, link, strat)
					el, rt, err := one(c, strat, scope)
					if err != nil {
						return err
					}
					row = append(row, el)
					route = rt
				}
				t.AddRow(append(row, route)...)
			}
		}
	}
	t.Note = "auto prices vectored/sieved/two-phase per call from the drive parameters and the link model;\nroute is the path auto picked — dense favors sieving, sparse vectored, interleaved two-phase\n(until congestion inverts the trade)"
	fmt.Fprintln(w, t.String())
	return nil
}

// contendedDemo sweeps rank count × bisection bandwidth over the
// nearly-aligned shifted checkpoint (each rank writes one slab of the
// file, but slab order is a rotation of rank order, so round-robin
// domain assignment ships every byte across the interconnect while
// locality-aware assignment ships almost none). The shared link makes
// exchange cost scale with total volume, so the locality win grows with
// rank count and contention.
func contendedDemo(w io.Writer) error {
	const (
		devs      = 4
		records   = 1024 // 4 KiB records = fs blocks, unit-1 declustered
		straggler = 8    // trailing blocks of each slab written by a neighbor
	)
	t := stats.NewTable("Contention-aware collective I/O: shifted checkpoint, 1024 records (4 KiB) on 4 devices,\nper-process link 2.5 MB/s, aggregator domains round-robin vs locality-aware",
		"ranks", "bisection", "moved rr", "moved loc", "elapsed rr", "elapsed loc", "speedup")
	for _, ranks := range []int{4, 8, 16} {
		for _, bisect := range []float64{0, 25e6, 5e6} {
			var elapsed [2]time.Duration
			var moved [2]int64
			for _, locality := range []bool{false, true} {
				e := sim.NewEngine()
				disks := make([]*device.Disk, devs)
				for i := range disks {
					disks[i] = device.New(device.Config{Engine: e, Name: fmt.Sprintf("d%d", i)})
				}
				store, err := blockio.NewDirect(disks)
				if err != nil {
					return err
				}
				pol := "rr"
				if locality {
					pol = "loc"
				}
				attach(fmt.Sprintf("contended/%d/%.0f/%s", ranks, bisect/1e6, pol), e, disks, store)
				vol := pfs.NewVolume(store)
				_, err = vol.Create(pfs.Spec{
					Name: "ckpt", Org: pfs.OrgGlobalDirect,
					RecordSize: 4096, BlockRecords: 1, NumRecords: records,
					Placement: pfs.PlaceStriped, StripeUnitFS: 1,
				})
				if err != nil {
					return err
				}
				group, err := vol.OpenGroup("ckpt")
				if err != nil {
					return err
				}
				col, err := collective.Open(group, ranks, collective.Options{
					Aggregators: ranks, Locality: locality,
				})
				if err != nil {
					return err
				}
				slab := int64(records / ranks)
				var rankErr error
				g, _ := mpp.Run(e, ranks, "rank", func(p *mpp.Proc) {
					// Main slab (rank+3) mod ranks minus its straggler
					// tail, plus the tail of the preceding slab.
					main := int64((p.Rank() + 3) % ranks)
					tail := int64((p.Rank() + 2) % ranks)
					vec := blockio.Vec{
						{Block: main * slab, N: slab - straggler, BufOff: 0},
						{Block: tail*slab + slab - straggler, N: straggler, BufOff: (slab - straggler) * 4096},
					}
					buf := make([]byte, slab*4096)
					if err := col.WriteAll(p, []collective.VecReq{{File: 0, Vec: vec}}, buf); err != nil && rankErr == nil {
						rankErr = err
					}
				})
				g.SetLink(10*time.Microsecond, 2.5e6)
				if bisect > 0 {
					g.SetBisection(bisect)
				}
				attachGroup(g, "rank")
				if err := e.Run(); err != nil {
					return err
				}
				if rankErr != nil {
					return rankErr
				}
				idx := 0
				if locality {
					idx = 1
				}
				elapsed[idx] = e.Now()
				moved[idx] = col.LastStats().BytesMoved
			}
			bis := "free"
			if bisect > 0 {
				bis = fmt.Sprintf("%.0f MB/s", bisect/1e6)
			}
			t.AddRow(ranks, bis,
				fmt.Sprintf("%.2f MB", float64(moved[0])/1e6),
				fmt.Sprintf("%.2f MB", float64(moved[1])/1e6),
				elapsed[0], elapsed[1],
				fmt.Sprintf("%.2fx", float64(elapsed[0])/float64(elapsed[1])))
		}
	}
	t.Note = "rr = round-robin domains, loc = locality-aware (Options.Locality); moved = bytes crossing the\ninterconnect (Collective.LastStats). Device requests are identical — the win is pure exchange."
	fmt.Fprintln(w, t.String())
	return nil
}

// pipelineDemo shows chunked collective buffering: the contended 8-rank
// strided checkpoint issued as a single-shot two-phase collective
// (whole exchange, then whole access — each phase idles the other's
// resource) versus the pipelined schedule (CollectiveOptions.ChunkBytes:
// the exchange of chunk k+1 overlaps the device access of chunk k).
func pipelineDemo(w io.Writer) error {
	const (
		ranks   = 8
		records = 4096 // 4 KiB records = fs blocks, unit-1 declustered
	)
	t := stats.NewTable("Pipelined collective I/O: 8-rank strided checkpoint, 4096 records (4 KiB) on 4 devices,\n100 MB/s links sharing a 5 MB/s bisection pool",
		"chunk", "requests", "elapsed", "MB/s", "overlap", "link idle", "speedup")
	var base time.Duration
	for _, chunk := range []int64{0, 64 * 4096, 256 * 4096} {
		m := pario.NewMachine(4)
		attachMachine(fmt.Sprintf("pipeline/%dKiB", chunk/1024), m)
		_, err := m.Volume.Create(pario.Spec{
			Name: "ckpt", Org: pario.OrgGlobalDirect,
			RecordSize: 4096, BlockRecords: 1, NumRecords: records,
			Placement: pario.PlaceStriped, StripeUnitFS: 1,
		})
		if err != nil {
			return err
		}
		group, err := m.Volume.OpenGroup("ckpt")
		if err != nil {
			return err
		}
		col, err := pario.OpenCollective(group, ranks, pario.CollectiveOptions{ChunkBytes: chunk})
		if err != nil {
			return err
		}
		var rankErr error
		rg := m.GoRanks(ranks, "rank", func(r *pario.Rank) {
			rank := int64(r.Rank())
			var vec pario.Vec
			var off int64
			for b := rank; b < records; b += ranks {
				vec = append(vec, pario.VecSeg{Block: b, N: 1, BufOff: off})
				off += 4096
			}
			buf := make([]byte, off)
			if err := col.WriteAll(r, []pario.VecReq{{File: 0, Vec: vec}}, buf); err != nil && rankErr == nil {
				rankErr = err
			}
		})
		rg.SetLink(10*time.Microsecond, 100e6)
		rg.SetBisection(5e6)
		if err := m.Run(); err != nil {
			return err
		}
		if rankErr != nil {
			return rankErr
		}
		var requests int64
		for _, d := range m.Disks {
			requests += d.Stats().Requests()
		}
		if chunk == 0 {
			base = m.Engine.Now()
		}
		st := col.LastStats()
		name := "single-shot"
		if chunk > 0 {
			name = fmt.Sprintf("%d KiB", chunk/1024)
		}
		elapsed := m.Engine.Now()
		bytes := int64(records) * 4096
		t.AddRow(name, requests, elapsed, stats.MBps(bytes, elapsed),
			st.Overlap.Round(time.Millisecond),
			fmt.Sprintf("%.0f%%", 100*(1-st.ExchangeTime.Seconds()/elapsed.Seconds())),
			fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)))
	}
	t.Note = "overlap = virtual time with the exchange and the drives concurrently busy (Collective.LastStats);\nchunking trades per-chunk request overhead for that overlap — TestPipelineWin enforces the win"
	fmt.Fprintln(w, t.String())
	return nil
}

// profileDemo runs the checkpoint scenario (8-rank collective write +
// sequential restart scan) under the named cross-layer profile, or
// under both for comparison when which is empty.
func profileDemo(w io.Writer, which string) error {
	const (
		ranks   = 8
		records = 2048
	)
	var profiles []pario.Profile
	switch which {
	case "paper":
		profiles = []pario.Profile{pario.PaperProfile()}
	case "tuned":
		profiles = []pario.Profile{pario.TunedProfile()}
	case "":
		profiles = []pario.Profile{pario.PaperProfile(), pario.TunedProfile()}
	default:
		return fmt.Errorf("unknown profile %q (want tuned or paper)", which)
	}
	t := stats.NewTable("Cross-layer profiles: checkpoint write (8-rank collective) + restart scan, 2048 records (4 KiB)\non 4 devices, unit-1 declustered",
		"profile", "requests", "elapsed", "MB/s", "speedup")
	var base time.Duration
	for _, pf := range profiles {
		m := pario.NewProfiledMachine(4, pf)
		attachMachine("profile/"+pf.Name, m)
		f, err := m.Volume.Create(pario.Spec{
			Name: "ckpt", Org: pario.OrgGlobalDirect,
			RecordSize: 4096, BlockRecords: 1, NumRecords: records,
			Placement: pario.PlaceStriped, StripeUnitFS: 1,
		})
		if err != nil {
			return err
		}
		group, err := m.Volume.OpenGroup("ckpt")
		if err != nil {
			return err
		}
		col, err := pario.OpenCollective(group, ranks, pf.Collective)
		if err != nil {
			return err
		}
		var rankErr error
		pf := pf
		rg := m.GoRanks(ranks, "rank", func(r *pario.Rank) {
			rank := int64(r.Rank())
			var vec pario.Vec
			var off int64
			for b := rank; b < records; b += ranks {
				vec = append(vec, pario.VecSeg{Block: b, N: 1, BufOff: off})
				off += 4096
			}
			buf := make([]byte, off)
			if err := col.WriteAll(r, []pario.VecReq{{File: 0, Vec: vec}}, buf); err != nil {
				if rankErr == nil {
					rankErr = err
				}
				return
			}
			if r.Rank() != 0 {
				return
			}
			rd, err := pario.OpenReader(f, pf.Access)
			if err != nil {
				if rankErr == nil {
					rankErr = err
				}
				return
			}
			for {
				if _, _, err := rd.ReadRecord(r.Proc); err != nil {
					break
				}
			}
			_ = rd.Close(r.Proc)
		})
		pf.ConfigureRanks(rg)
		if err := m.Run(); err != nil {
			return err
		}
		if rankErr != nil {
			return rankErr
		}
		var requests int64
		for _, d := range m.Disks {
			requests += d.Stats().Requests()
		}
		if base == 0 {
			base = m.Engine.Now()
		}
		elapsed := m.Engine.Now()
		bytes := int64(2) * records * 4096 // written then read back
		t.AddRow(pf.Name, requests, elapsed, stats.MBps(bytes, elapsed),
			fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)))
	}
	t.Note = "paper = the pinned 1989 model (free link, FCFS, block-at-a-time, single-shot collectives);\ntuned = TunedProfile (extents, SCAN+merge, modeled link, locality + chunked collectives)"
	fmt.Fprintln(w, t.String())
	return nil
}

// scaleDemo sweeps the simulation itself: the same contended pipelined
// collective checkpoint (every rank writes two strided blocks, 100 MB/s
// links sharing a 500 MB/s bisection pool, chunked aggregator staging)
// at growing machine sizes, reporting how much wall-clock time one
// modeled second costs. This is the engine-scaling scenario the sparse
// exchange path and the pooled virtual-time engine are sized for:
// 4096 ranks × 256 drives must stay in single-digit seconds.
func scaleDemo(w io.Writer) error {
	t := stats.NewTable("Engine scaling: contended pipelined collective checkpoint, wall-clock cost per modeled second",
		"ranks", "drives", "modeled", "wall", "wall s / modeled s")
	for _, cfg := range [][2]int{{256, 16}, {1024, 64}, {4096, 256}} {
		ranks, drives := cfg[0], cfg[1]
		const bs = 256
		e := sim.NewEngine()
		geom := device.Geometry{BlockSize: bs, BlocksPerCyl: 8, Cylinders: 64}
		disks := make([]*device.Disk, drives)
		for i := range disks {
			disks[i] = device.New(device.Config{
				Name: fmt.Sprintf("d%d", i), Geometry: geom, Engine: e,
			})
		}
		store, err := blockio.NewDirect(disks)
		if err != nil {
			return err
		}
		attach(fmt.Sprintf("scale/%dx%d", ranks, drives), e, disks, store)
		vol := pfs.NewVolume(store)
		if _, err := vol.Create(pfs.Spec{
			Name: "chk", Org: pfs.OrgSequential, RecordSize: bs,
			NumRecords: int64(2 * ranks), Placement: pfs.PlaceStriped, StripeUnitFS: 1,
		}); err != nil {
			return err
		}
		group, err := vol.OpenGroup("chk")
		if err != nil {
			return err
		}
		col, err := collective.Open(group, ranks, collective.Options{ChunkBytes: 8 * bs})
		if err != nil {
			return err
		}
		var rankErr error
		g, _ := mpp.Run(e, ranks, "rank", func(p *mpp.Proc) {
			r := int64(p.Rank())
			reqs := []collective.VecReq{{File: 0, Vec: blockio.Vec{
				{Block: r, N: 1, BufOff: 0},
				{Block: r + int64(ranks), N: 1, BufOff: bs},
			}}}
			buf := make([]byte, 2*bs)
			if err := col.WriteAll(p, reqs, buf); err != nil && rankErr == nil {
				rankErr = err
			}
		})
		g.SetLink(2*time.Microsecond, 100e6)
		g.SetBisection(500e6)
		attachGroup(g, "rank")
		start := time.Now()
		if err := e.Run(); err != nil {
			return err
		}
		if rankErr != nil {
			return rankErr
		}
		wall := time.Since(start)
		t.AddRow(ranks, drives, e.Now(), wall.Round(time.Millisecond),
			fmt.Sprintf("%.3f", wall.Seconds()/e.Now().Seconds()))
	}
	t.Note = "wall time is host-dependent; the shape to watch is sub-linear growth in wall s / modeled s\nas ranks × drives grow. BenchmarkEngineScale tracks the 4096 × 256 point in CI (BENCH_scale.json)."
	fmt.Fprintln(w, t.String())
	return nil
}

// replayDemo sweeps the schedule cache: the same iterated collective
// checkpoint (every rank rewrites its 8 interleaved blocks each
// iteration with fresh contents, contended interconnect) run with the
// plan cache enabled — iteration 1 plans, the rest replay the captured
// schedule — versus disabled (every iteration replans). Modeled time is
// identical by construction; the column to watch is host wall-clock.
func replayDemo(w io.Writer) error {
	t := stats.NewTable("Plan capture & replay: iterated collective checkpoint, host wall-clock cached vs uncached",
		"ranks", "iterations", "modeled", "wall uncached", "wall cached", "speedup")
	one := func(ranks, iters int, cache bool, scope string) (modeled, wall time.Duration, err error) {
		const bs = 256
		const perRank = 8
		e := sim.NewEngine()
		geom := device.Geometry{BlockSize: bs, BlocksPerCyl: 8, Cylinders: 64}
		disks := make([]*device.Disk, 16)
		for i := range disks {
			disks[i] = device.New(device.Config{
				Name: fmt.Sprintf("d%d", i), Geometry: geom, Engine: e,
			})
		}
		store, err := blockio.NewDirect(disks)
		if err != nil {
			return 0, 0, err
		}
		attach(scope, e, disks, store)
		vol := pfs.NewVolume(store)
		if _, err := vol.Create(pfs.Spec{
			Name: "chk", Org: pfs.OrgSequential, RecordSize: bs,
			NumRecords: int64(perRank * ranks), Placement: pfs.PlaceStriped, StripeUnitFS: 1,
		}); err != nil {
			return 0, 0, err
		}
		group, err := vol.OpenGroup("chk")
		if err != nil {
			return 0, 0, err
		}
		opts := collective.Options{}
		if !cache {
			opts.PlanCache = -1
		}
		col, err := collective.Open(group, ranks, opts)
		if err != nil {
			return 0, 0, err
		}
		var rankErr error
		g, _ := mpp.Run(e, ranks, "rank", func(p *mpp.Proc) {
			r := int64(p.Rank())
			var vec blockio.Vec
			for k := int64(0); k < perRank; k++ {
				vec = append(vec, blockio.VecSeg{Block: r + k*int64(ranks), N: 1, BufOff: k * bs})
			}
			reqs := []collective.VecReq{{File: 0, Vec: vec}}
			buf := make([]byte, perRank*bs)
			for it := 0; it < iters; it++ {
				for i := range buf {
					buf[i] = byte(it + i)
				}
				if err := col.WriteAll(p, reqs, buf); err != nil && rankErr == nil {
					rankErr = err
				}
			}
		})
		g.SetLink(2*time.Microsecond, 50e6)
		g.SetBisection(200e6)
		attachGroup(g, "rank")
		start := time.Now()
		if err := e.Run(); err != nil {
			return 0, 0, err
		}
		if rankErr != nil {
			return 0, 0, rankErr
		}
		return e.Now(), time.Since(start), nil
	}
	for _, ranks := range []int{256, 1024} {
		for _, iters := range []int{4, 32} {
			var walls [2]time.Duration
			var modeled time.Duration
			for i, cache := range []bool{false, true} {
				mode := "uncached"
				if cache {
					mode = "cached"
				}
				m, wl, err := one(ranks, iters, cache, fmt.Sprintf("replay/%dx%d/%s", ranks, iters, mode))
				if err != nil {
					return err
				}
				walls[i], modeled = wl, m
			}
			t.AddRow(ranks, iters, modeled, walls[0].Round(time.Millisecond), walls[1].Round(time.Millisecond),
				fmt.Sprintf("%.2fx", float64(walls[0])/float64(walls[1])))
		}
	}
	t.Note = "cached: iteration 1 builds and captures the schedule, iterations 2+ replay it (fingerprint\nlookup + payload packing only). Modeled results are bit-identical either way — TestPlanReplayWin\nenforces the host-side win and the identity (BENCH_replay.json tracks it in CI)."
	fmt.Fprintln(w, t.String())
	return nil
}

// multijobDemo sweeps the I/O service: J jobs (job 0 a bulk writer
// issuing a backlog of nonblocking checkpoints, the rest small
// latency-sensitive jobs) share one single-worker server, at several
// arrival spacings, under each QoS policy. The table reports the worst
// small-job p99 — the number FIFO lets the bulk job ruin and fair-share
// or strict priority bound — plus the bulk job's own p99 and the run's
// modeled makespan (QoS reorders the backlog, it does not starve it).
func multijobDemo(w io.Writer) error {
	t := stats.NewTable("Multi-job I/O service: QoS policy vs small jobs' tail latency (one server worker; job 0 is a bulk writer)",
		"jobs", "gap", "policy", "small p99", "bulk p99", "makespan")
	for _, nJobs := range []int{2, 4, 8} {
		for _, gap := range []time.Duration{0, 5 * time.Millisecond} {
			for _, pol := range []pario.IOPolicy{pario.IOFIFO, pario.IOFairShare, pario.IOPriority} {
				small, bulk, makespan, err := multijobRun(nJobs, gap, pol)
				if err != nil {
					return err
				}
				t.AddRow(nJobs, gap, pol, small, bulk, makespan)
			}
		}
	}
	t.Note = "small p99 = worst latency percentile across the small jobs' lanes (IOJob.Stats);\ngap staggers job arrivals. fair = start-time fair queuing by served bytes; prio = small jobs at priority 1."
	fmt.Fprintln(w, t.String())
	return nil
}

// multijobRun executes one cell of the multijob sweep and returns the
// worst small-job p99, the bulk job's p99, and the modeled makespan.
func multijobRun(nJobs int, gap time.Duration, pol pario.IOPolicy) (small, bulk, makespan time.Duration, err error) {
	const ranks = 4
	m := pario.NewMachine(2)
	attachMachine(fmt.Sprintf("multijob/%d/%s/%s", nJobs, gap, pol), m)
	srv := pario.NewIOServer(pario.IOServerConfig{Workers: 1, Policy: pol})
	srv.SetProbe(m.Probe())
	var done pario.Group
	var lanes []*pario.IOJob
	var cols []*pario.Collective
	for j := 0; j < nJobs; j++ {
		blocks := int64(32)
		prio := 1 // small jobs overtake under strict priority
		if j == 0 {
			blocks, prio = 256, 0
		}
		if _, err = m.Volume.Create(pario.Spec{
			Name: fmt.Sprintf("job%d", j), Org: pario.OrgGlobalDirect,
			RecordSize: 4096, BlockRecords: 1, NumRecords: blocks,
			Placement: pario.PlaceStriped, StripeUnitFS: 1,
		}); err != nil {
			return
		}
		var g *pario.FileGroup
		if g, err = m.Volume.OpenGroup(fmt.Sprintf("job%d", j)); err != nil {
			return
		}
		lane := srv.AddJob(pario.IOJobConfig{Name: fmt.Sprintf("job%d", j), Priority: prio})
		var col *pario.Collective
		if col, err = pario.OpenCollective(g, ranks, pario.CollectiveOptions{Service: lane}); err != nil {
			return
		}
		lanes, cols = append(lanes, lane), append(cols, col)
	}
	srv.Start(m.Engine)
	var rankErr error
	done.Add(nJobs * ranks)
	for j := 0; j < nJobs; j++ {
		j := j
		blocks, rounds := int64(32), 4
		if j == 0 {
			blocks, rounds = 256, 4
		}
		m.GoRanks(ranks, fmt.Sprintf("job%d", j), func(r *pario.Rank) {
			defer done.Done(r.Proc)
			r.Compute(time.Duration(j) * gap)
			per := blocks / ranks
			buf := make([]byte, per*4096)
			reqs := []pario.VecReq{{File: 0, Vec: pario.Vec{{Block: int64(r.Rank()) * per, N: per}}}}
			if j == 0 {
				// Bulk: the whole backlog up front, then the Waits.
				var hs []*pario.IOHandle
				for i := 0; i < rounds; i++ {
					h, herr := cols[j].IWriteAll(r, reqs, buf)
					if herr != nil {
						rankErr = herr
						return
					}
					hs = append(hs, h)
				}
				for _, h := range hs {
					if herr := h.Wait(r); herr != nil {
						rankErr = herr
					}
				}
				return
			}
			for i := 0; i < rounds; i++ {
				h, herr := cols[j].IWriteAll(r, reqs, buf)
				if herr != nil {
					rankErr = herr
					return
				}
				if herr := h.Wait(r); herr != nil {
					rankErr = herr
				}
			}
		})
	}
	m.Go("driver", func(p *pario.Proc) {
		done.Wait(p)
		srv.Stop(p)
		makespan = p.Now()
	})
	if err = m.Run(); err != nil {
		return
	}
	if err = rankErr; err != nil {
		return
	}
	bulk = lanes[0].Stats().P99
	for _, lane := range lanes[1:] {
		if st := lane.Stats(); st.P99 > small {
			small = st.P99
		}
	}
	return
}
