// Command pariobench regenerates the paper's figures and tables.
//
// Usage:
//
//	pariobench -list
//	pariobench -run e1
//	pariobench -run all
//
// Each experiment builds a fresh simulated 1989-class machine, runs its
// workload under virtual time, and prints the table(s) recorded in
// EXPERIMENTS.md. Runs are deterministic: the same binary prints the
// same numbers every time.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	runID := flag.String("run", "all", "experiment id to run (f1, e1..e11, or 'all')")
	flag.Parse()
	if err := run(*list, *runID, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pariobench: %v\n", err)
		os.Exit(1)
	}
}

// run lists or executes experiments; factored out of main for testing.
func run(list bool, runID string, w io.Writer) error {
	if list {
		for _, id := range experiments.IDs() {
			fmt.Fprintf(w, "%-4s %s\n", id, experiments.Title(id))
		}
		return nil
	}
	ids := experiments.IDs()
	if runID != "all" {
		ids = []string{runID}
	}
	for _, id := range ids {
		res, err := experiments.Run(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(w, res.String())
	}
	return nil
}
