package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListShowsAllExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run(true, "all", &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, id := range []string{"f1", "e1", "e11"} {
		if !strings.Contains(s, id) {
			t.Fatalf("list missing %s:\n%s", id, s)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run(false, "f1", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Fatalf("f1 output:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run(false, "zzz", &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
