package pario_test

import (
	"io"
	"testing"
	"time"

	pario "repro"
)

// TestPublicAPIEndToEnd exercises the full public surface the way a
// downstream user would: create a machine, write partitions in parallel,
// read back self-scheduled, and check the global view.
func TestPublicAPIEndToEnd(t *testing.T) {
	m := pario.NewMachine(4)
	const parts = 4
	const records = 64
	f, err := m.Volume.Create(pario.Spec{
		Name: "results", Org: pario.OrgPartitioned,
		RecordSize: 4096, NumRecords: records, Parts: parts,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Go("main", func(p *pario.Proc) {
		var g pario.Group
		for w := 0; w < parts; w++ {
			wid := w
			g.Spawn(p.Engine(), "writer", func(c *pario.Proc) {
				wr, err := pario.OpenPartWriter(f, wid, pario.DefaultOptions())
				if err != nil {
					t.Error(err)
					return
				}
				rec := make([]byte, 4096)
				first, end := f.PartRecordRange(wid)
				for r := first; r < end; r++ {
					rec[0] = byte(wid + 1)
					if _, err := wr.WriteRecord(c, rec); err != nil {
						t.Error(err)
						return
					}
				}
				if err := wr.Close(c); err != nil {
					t.Error(err)
				}
			})
		}
		g.Wait(p)

		// Self-scheduled consumption by 3 workers.
		ss, err := pario.OpenSelfSched(f, pario.SSRead, pario.DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		var seen int
		var g2 pario.Group
		for w := 0; w < 3; w++ {
			g2.Spawn(p.Engine(), "reader", func(c *pario.Proc) {
				dst := make([]byte, 4096)
				for {
					rec, err := ss.ReadNext(c, dst)
					if err == io.EOF {
						return
					}
					if err != nil {
						t.Error(err)
						return
					}
					wantTag := byte(rec/16 + 1)
					if dst[0] != wantTag {
						t.Errorf("record %d tag %d, want %d", rec, dst[0], wantTag)
					}
					seen++
					c.Sleep(time.Millisecond)
				}
			})
		}
		g2.Wait(p)
		if err := ss.Close(p); err != nil {
			t.Error(err)
		}
		if seen != records {
			t.Errorf("self-scheduled saw %d records", seen)
		}

		// Global (conventional) view.
		gr, err := pario.OpenGlobalReader(f, p)
		if err != nil {
			t.Error(err)
			return
		}
		all, err := io.ReadAll(gr)
		if err != nil {
			t.Error(err)
			return
		}
		if len(all) != records*4096 {
			t.Errorf("global view size %d", len(all))
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Engine.Now() == 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() time.Duration {
		m := pario.NewMachine(2)
		f, err := m.Volume.Create(pario.Spec{
			Name: "f", Org: pario.OrgSequential, RecordSize: 4096, NumRecords: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Go("w", func(p *pario.Proc) {
			w, err := pario.OpenWriter(f, pario.DefaultOptions())
			if err != nil {
				t.Error(err)
				return
			}
			rec := make([]byte, 4096)
			for i := 0; i < 32; i++ {
				if _, err := w.WriteRecord(p, rec); err != nil {
					t.Error(err)
					return
				}
			}
			_ = w.Close(p)
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Engine.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("no modeled time")
	}
}

func TestWallContextUsage(t *testing.T) {
	// Library is usable without the engine for sequential work.
	disks := []*pario.Disk{pario.NewDisk(pario.DiskConfig{})}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		t.Fatal(err)
	}
	f, err := vol.Create(pario.Spec{Name: "f", RecordSize: 64, NumRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := pario.NewWall()
	gw, err := pario.OpenGlobalWriter(f, ctx, pario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 8*64)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := gw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	gr, err := pario.OpenGlobalReader(f, ctx)
	if err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if back[i] != payload[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}

func TestVolumePersistenceViaPublicAPI(t *testing.T) {
	disks := []*pario.Disk{pario.NewDisk(pario.DiskConfig{}), pario.NewDisk(pario.DiskConfig{})}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		t.Fatal(err)
	}
	f, err := vol.Create(pario.Spec{Name: "keep", RecordSize: 64, NumRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := pario.NewWall()
	gw, err := pario.OpenGlobalWriter(f, ctx, pario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Write(make([]byte, 8*64)); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := pario.SaveVolume(dir, disks, vol); err != nil {
		t.Fatal(err)
	}
	_, vol2, err := pario.LoadVolume(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vol2.Lookup("keep"); err != nil {
		t.Fatal(err)
	}
}
