// Locality acceptance: on a contended interconnect, locality-aware
// aggregator domains must beat round-robin assignment — the ISSUE 4
// tentpole numbers, enforced so they cannot regress.
//
// The workload is a "nearly-aligned" 8-rank checkpoint: the file splits
// into eight 128-block slabs and each rank writes one slab almost
// entirely — 120 of its 128 blocks — plus an 8-block straggler tail in a
// neighbor's slab (the kind of off-by-a-halo misalignment real domain
// decompositions produce). Crucially, the slab a rank writes is NOT slab
// r but slab (r+3) mod 8: applications number their ranks by grid
// position, not file offset, so round-robin domain assignment (domain a
// → rank a) ships every byte across the interconnect even though each
// domain has an obvious owner. Locality-aware assignment gives each
// domain to the rank holding 120/128 of it, so only the straggler tails
// (64 of 1024 blocks) cross the link.
//
// The interconnect is contended 1989-class hardware: 2.5 MB/s
// per-process channels (SetLink) sharing a 10 MB/s bisection pool
// (SetBisection), so the naive plan's 4 MiB exchange costs real time
// while the locality plan's 256 KiB is noise. Device traffic is
// identical either way — same domains, same batches — which isolates the
// win to the exchange phase.
package pario_test

import (
	"testing"
	"time"

	pario "repro"
)

const (
	locRanks     = 8
	locSlab      = 128 // blocks per slab; 8 slabs = 1024 records
	locStraggler = 8   // trailing blocks of each slab written by a neighbor
	locRecords   = locRanks * locSlab
)

// localityResult is one measured shifted-checkpoint write.
type localityResult struct {
	elapsed    time.Duration
	stats      pario.ExchangeStats
	linkBytes  int64
	requests   int64
	totalBytes int64
}

// runShiftedCheckpoint writes the nearly-aligned checkpoint with the
// given domain assignment policy and verifies the landed bytes.
func runShiftedCheckpoint(tb testing.TB, locality bool) localityResult {
	tb.Helper()
	m := pario.NewMachine(4)
	m.SetProbe(pario.NewRecorder()) // live recorder: must not perturb modeled time
	f, err := m.Volume.Create(pario.Spec{
		Name: "ckpt", Org: pario.OrgGlobalDirect,
		RecordSize: 4096, BlockRecords: 1, NumRecords: locRecords,
		Placement: pario.PlaceStriped, StripeUnitFS: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	group, err := m.Volume.OpenGroup("ckpt")
	if err != nil {
		tb.Fatal(err)
	}
	col, err := pario.OpenCollective(group, locRanks, pario.CollectiveOptions{
		Aggregators: locRanks,
		Locality:    locality,
	})
	if err != nil {
		tb.Fatal(err)
	}
	fill := func(buf []byte, gb int64) {
		buf[0] = byte(gb)
		buf[1] = byte(gb >> 8)
	}
	rg := m.GoRanks(locRanks, "rank", func(r *pario.Rank) {
		// Main slab (r+3) mod 8 minus its straggler tail, plus the tail
		// of slab (r+2) mod 8 — together [0, locRecords) across ranks.
		main := int64((r.Rank() + 3) % locRanks)
		tail := int64((r.Rank() + 2) % locRanks)
		vec := pario.Vec{
			{Block: main * locSlab, N: locSlab - locStraggler, BufOff: 0},
			{Block: tail*locSlab + locSlab - locStraggler, N: locStraggler,
				BufOff: (locSlab - locStraggler) * 4096},
		}
		buf := make([]byte, locSlab*4096)
		for i := int64(0); i < locSlab-locStraggler; i++ {
			fill(buf[i*4096:], main*locSlab+i)
		}
		for i := int64(0); i < locStraggler; i++ {
			fill(buf[(locSlab-locStraggler+i)*4096:], tail*locSlab+locSlab-locStraggler+i)
		}
		if err := col.WriteAll(r, []pario.VecReq{{File: 0, Vec: vec}}, buf); err != nil {
			tb.Errorf("rank %d: %v", r.Rank(), err)
		}
	})
	rg.SetLink(10*time.Microsecond, 2.5e6)
	rg.SetBisection(10e6)
	if err := m.Run(); err != nil {
		tb.Fatal(err)
	}
	var res localityResult
	res.elapsed = m.Engine.Now()
	res.stats = col.LastStats()
	_, res.linkBytes = rg.Traffic()
	for _, d := range m.Disks {
		res.requests += d.Stats().Requests()
	}
	res.totalBytes = locRecords * 4096
	// Same bytes on disk either way.
	ctx := pario.NewWall()
	blk := make([]byte, 4096)
	for b := int64(0); b < locRecords; b++ {
		if err := f.Set().ReadBlock(ctx, b, blk); err != nil {
			tb.Fatal(err)
		}
		if blk[0] != byte(b) || blk[1] != byte(b>>8) {
			tb.Fatalf("block %d corrupt after checkpoint (locality=%v)", b, locality)
		}
	}
	return res
}

// TestLocalityWin enforces the tentpole acceptance criteria: ≥2× fewer
// bytes over the interconnect (measured 16×: only the straggler tails
// move) and better modeled time (measured ≈2×) for locality-aware
// domains versus round-robin on the contended link, with identical
// device request counts.
func TestLocalityWin(t *testing.T) {
	naive := runShiftedCheckpoint(t, false)
	local := runShiftedCheckpoint(t, true)
	if naive.stats.BytesMoved == 0 || local.stats.BytesMoved == 0 {
		t.Fatalf("degenerate exchange split: %+v %+v", naive.stats, local.stats)
	}
	moveRatio := float64(naive.stats.BytesMoved) / float64(local.stats.BytesMoved)
	timeRatio := naive.elapsed.Seconds() / local.elapsed.Seconds()
	t.Logf("bytes moved %d -> %d (%.1fx fewer), local %d -> %d",
		naive.stats.BytesMoved, local.stats.BytesMoved, moveRatio,
		naive.stats.BytesLocal, local.stats.BytesLocal)
	t.Logf("measured link traffic %d -> %d bytes", naive.linkBytes, local.linkBytes)
	t.Logf("elapsed %v -> %v (%.2fx: %.2f -> %.2f MB/s)",
		naive.elapsed, local.elapsed, timeRatio,
		float64(naive.totalBytes)/1e6/naive.elapsed.Seconds(),
		float64(local.totalBytes)/1e6/local.elapsed.Seconds())
	if moveRatio < 2 {
		t.Errorf("interconnect byte reduction %.2fx < 2x", moveRatio)
	}
	if timeRatio < 1.5 {
		t.Errorf("modeled time improvement %.2fx < 1.5x", timeRatio)
	}
	// The split must agree with the measured link counters, and device
	// work must be identical — the win is purely exchange-side.
	if naive.linkBytes != naive.stats.BytesMoved || local.linkBytes != local.stats.BytesMoved {
		t.Errorf("stats/traffic disagree: naive %d vs %d, locality %d vs %d",
			naive.stats.BytesMoved, naive.linkBytes, local.stats.BytesMoved, local.linkBytes)
	}
	if naive.requests != local.requests {
		t.Errorf("device requests differ: %d vs %d", naive.requests, local.requests)
	}
}

// BenchmarkLocalityCheckpoint tracks the contended-link checkpoint
// trajectory for both domain assignments.
func BenchmarkLocalityCheckpoint(b *testing.B) {
	for _, mode := range []struct {
		name     string
		locality bool
	}{{"round-robin", false}, {"locality", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var res localityResult
			for i := 0; i < b.N; i++ {
				res = runShiftedCheckpoint(b, mode.locality)
			}
			b.ReportMetric(float64(res.totalBytes)/1e6/res.elapsed.Seconds(), "vMB/s")
			b.ReportMetric(float64(res.stats.BytesMoved)/1e6, "movedMB")
		})
	}
}
