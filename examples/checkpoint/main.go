// Checkpoint: a specialized parallel file (§2) used for checkpointing,
// stored on shadowed drive pairs (§5) so a drive failure between
// checkpoints cannot lose the saved state. The example fails a primary
// drive after the checkpoint is written, restores the computation from
// the surviving shadow, and verifies the restart state.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"

	pario "repro"
	"repro/internal/pfs"
	"repro/internal/stripe"
)

const (
	procs      = 4
	recordSize = 4096
	records    = 128
)

func main() {
	e := pario.NewEngine()
	mk := func(prefix string) []*pario.Disk {
		ds := make([]*pario.Disk, procs)
		for i := range ds {
			ds[i] = pario.NewDisk(pario.DiskConfig{
				Name:   fmt.Sprintf("%s%d", prefix, i),
				Engine: e,
			})
		}
		return ds
	}
	primaries, shadows := mk("p"), mk("s")
	mirror, err := stripe.NewMirror(primaries, shadows)
	if err != nil {
		log.Fatal(err)
	}
	vol := pfs.NewVolume(mirror)

	ckpt, err := vol.Create(pario.Spec{
		Name:       "checkpoint.0001",
		Org:        pario.OrgPartitioned,
		Category:   pario.Specialized,
		RecordSize: recordSize,
		NumRecords: records,
		Parts:      procs,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: all processes checkpoint their state in parallel; every
	// write lands on a drive and its shadow.
	e.Go("driver", func(p *pario.Proc) {
		var g pario.Group
		for w := 0; w < procs; w++ {
			wid := w
			g.Spawn(p.Engine(), fmt.Sprintf("proc-%d", wid), func(c *pario.Proc) {
				wr, err := pario.OpenPartWriter(ckpt, wid, pario.DefaultOptions())
				if err != nil {
					log.Fatal(err)
				}
				buf := make([]byte, recordSize)
				first, end := ckpt.PartRecordRange(wid)
				for r := first; r < end; r++ {
					binary.BigEndian.PutUint64(buf, uint64(r)|uint64(wid)<<56)
					if _, err := wr.WriteRecord(c, buf); err != nil {
						log.Fatal(err)
					}
				}
				if err := wr.Close(c); err != nil {
					log.Fatal(err)
				}
			})
		}
		g.Wait(p)
		checkpointDone := p.Now()

		// Disaster: primary drive 2 dies.
		mirror.Primary(2).Fail()

		// Phase 2: restart — every process reloads its partition; reads
		// on device 2 fail over to the shadow transparently.
		var g2 pario.Group
		bad := 0
		for w := 0; w < procs; w++ {
			wid := w
			g2.Spawn(p.Engine(), fmt.Sprintf("restart-%d", wid), func(c *pario.Proc) {
				rd, err := pario.OpenPartReader(ckpt, wid, pario.DefaultOptions())
				if err != nil {
					log.Fatal(err)
				}
				for {
					data, rec, err := rd.ReadRecord(c)
					if err == io.EOF {
						break
					}
					if err != nil {
						log.Fatalf("restart read failed: %v", err)
					}
					if binary.BigEndian.Uint64(data) != uint64(rec)|uint64(wid)<<56 {
						bad++
					}
				}
				_ = rd.Close(c)
			})
		}
		g2.Wait(p)
		fmt.Printf("checkpoint of %d records by %d processes done at t=%v\n", records, procs, checkpointDone)
		fmt.Printf("primary drive 2 failed; restart completed at t=%v with %d bad records (want 0)\n",
			p.Now(), bad)

		// Repair: replacement drive rebuilt from its shadow.
		if err := mirror.Primary(2).Erase(); err != nil {
			log.Fatal(err)
		}
		mirror.Primary(2).Repair()
		if err := mirror.Rebuild(p, 2, ckpt.Mapper().TotalFSBlocks(), true); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replacement primary rebuilt from shadow at t=%v\n", p.Now())
	})
	if err := e.Run(); err != nil {
		log.Fatal(err)
	}
}
