// Reduction: a complete mini parallel program in the style the paper
// assumes (§2's MIMD machine): an mpp process group reads a wrapped (IS)
// matrix from a parallel file, computes local row norms, synchronizes at
// a barrier, and combines results with collective reductions — no
// pre-partitioned per-process files anywhere.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"

	pario "repro"
	"repro/internal/core"
	"repro/internal/mpp"
	"repro/internal/sim"
)

const (
	procs = 4
	rows  = 48
	cols  = 16
)

func main() {
	e := pario.NewEngine()
	disks := make([]*pario.Disk, procs)
	for i := range disks {
		disks[i] = pario.NewDisk(pario.DiskConfig{Name: fmt.Sprintf("d%d", i), Engine: e})
	}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		log.Fatal(err)
	}
	f, err := vol.Create(pario.Spec{
		Name: "matrix", Org: pario.OrgInterleaved,
		RecordSize: cols * 8, BlockRecords: 1, NumRecords: rows, Parts: procs,
	})
	if err != nil {
		log.Fatal(err)
	}

	var frobenius, maxRow float64
	_, join := mpp.Run(e, procs, "rank", func(p *mpp.Proc) {
		// Phase 1: each rank writes its wrapped rows.
		w, err := core.OpenInterleavedWriter(f, p.Rank(), p.Size(), core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, cols*8)
		for row := p.Rank(); row < rows; row += p.Size() {
			for c := 0; c < cols; c++ {
				binary.BigEndian.PutUint64(buf[c*8:], math.Float64bits(float64(row+c)))
			}
			if _, err := w.WriteRecord(p, buf); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Close(p); err != nil {
			log.Fatal(err)
		}
		p.Barrier() // everyone's rows are on disk

		// Phase 2: each rank reads its rows back, computes local sums.
		r, err := core.OpenInterleavedReader(f, p.Rank(), p.Size(), core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		localSq, localMax := 0.0, 0.0
		for {
			data, _, err := r.ReadRecord(p)
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			rowSq := 0.0
			for c := 0; c < cols; c++ {
				v := math.Float64frombits(binary.BigEndian.Uint64(data[c*8:]))
				rowSq += v * v
			}
			localSq += rowSq
			if rowSq > localMax {
				localMax = rowSq
			}
			p.Compute(500 * 1000) // 0.5 ms of virtual compute per row
		}
		_ = r.Close(p)

		// Phase 3: collectives.
		totalSq := p.ReduceSum(localSq)
		rowMax := p.ReduceMax(localMax)
		if p.Rank() == 0 {
			frobenius = math.Sqrt(totalSq)
			maxRow = math.Sqrt(rowMax)
		}
	})
	e.Go("join", func(p *sim.Proc) { join.Wait(p) })
	if err := e.Run(); err != nil {
		log.Fatal(err)
	}

	// Cross-check sequentially.
	want := 0.0
	for row := 0; row < rows; row++ {
		for c := 0; c < cols; c++ {
			want += float64(row+c) * float64(row+c)
		}
	}
	fmt.Printf("%d ranks over a wrapped %dx%d matrix (virtual t=%v)\n", procs, rows, cols, e.Now())
	fmt.Printf("Frobenius norm (reduced) = %.4f, check = %.4f\n", frobenius, math.Sqrt(want))
	fmt.Printf("max row norm  (reduced) = %.4f\n", maxRow)
}
