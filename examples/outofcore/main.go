// Outofcore: a PDA file as paged backing store for a computation whose
// data does not fit in memory — the paper's description of partitioned
// direct access: "blocks can be thought of as pages of virtual memory,
// with the direct access feature allowing multiple passes on the data."
//
// Four processes run a two-pass out-of-core transformation over their
// partitions, accessing records randomly within owned blocks through a
// small private block cache; the cache hit rates show the locality the
// paper expects.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	pario "repro"
)

const (
	procs        = 4
	recordSize   = 1024
	blockRecords = 4
	records      = 512 // 128 blocks, 32 per partition
)

func main() {
	m := pario.NewMachine(procs)
	f, err := m.Volume.Create(pario.Spec{
		Name:         "pages",
		Org:          pario.OrgPartitionedDirect,
		Category:     pario.Specialized,
		RecordSize:   recordSize,
		BlockRecords: blockRecords,
		NumRecords:   records,
		Parts:        procs,
	})
	if err != nil {
		log.Fatal(err)
	}

	hits := make([]float64, procs)
	m.Go("driver", func(p *pario.Proc) {
		var g pario.Group
		for w := 0; w < procs; w++ {
			wid := w
			g.Spawn(p.Engine(), fmt.Sprintf("proc-%d", wid), func(c *pario.Proc) {
				opts := pario.DefaultOptions()
				opts.CacheBlocks = 8 // memory budget: 8 pages
				h, err := pario.OpenDirectPart(f, wid, opts)
				if err != nil {
					log.Fatal(err)
				}
				first, end := f.PartRecordRange(wid)
				buf := make([]byte, recordSize)
				// Pass 1: initialize owned records (random-ish order:
				// stride through the partition).
				n := end - first
				for i := int64(0); i < n; i++ {
					r := first + (i*7)%n
					binary.BigEndian.PutUint64(buf, uint64(r))
					if err := h.WriteRecordAt(c, r, buf); err != nil {
						log.Fatal(err)
					}
				}
				// Pass 2: read-modify-write every record again.
				for i := int64(0); i < n; i++ {
					r := first + (i*13)%n
					if err := h.ReadRecordAt(c, r, buf); err != nil {
						log.Fatal(err)
					}
					v := binary.BigEndian.Uint64(buf)
					binary.BigEndian.PutUint64(buf, v*3)
					if err := h.WriteRecordAt(c, r, buf); err != nil {
						log.Fatal(err)
					}
				}
				if err := h.Close(c); err != nil {
					log.Fatal(err)
				}
				hits[wid] = h.CacheStats().HitRate()
			})
		}
		g.Wait(p)
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}

	// Verify sequentially.
	ctx := pario.NewWall()
	r, err := pario.OpenReader(f, pario.Options{NBufs: 2})
	if err != nil {
		log.Fatal(err)
	}
	bad := 0
	for {
		data, rec, err := r.ReadRecord(ctx)
		if err != nil {
			break
		}
		if binary.BigEndian.Uint64(data) != uint64(rec)*3 {
			bad++
		}
	}
	_ = r.Close(ctx)

	fmt.Printf("out-of-core 2-pass transform: %d records in %d-block pages, %d processes\n",
		records, blockRecords, procs)
	fmt.Printf("finished at virtual t=%v, %d bad records (want 0)\n", m.Engine.Now(), bad)
	for w, h := range hits {
		fmt.Printf("proc %d private page-cache hit rate: %.1f%%\n", w, h*100)
	}
}
