// Femcompare: the paper's §3 motivating experience, replayed. The NASA
// Finite Element Machine practice assigned a separate file to each
// process; pre- and post-processing utilities partitioned the global
// input and merged the outputs. This example runs the same workload both
// ways and reports the two §3 pain points: the number of file-system
// objects, and the sequential pre/post time a PS parallel file
// eliminates.
package main

import (
	"fmt"
	"log"
	"time"

	pario "repro"
	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/workload"
)

const (
	procs      = 16
	recordSize = 4096
	records    = 256
	computePer = 2 * time.Millisecond
)

// filePerProcess runs the FEM way: partition -> parallel phase on
// private files -> merge.
func filePerProcess() (files int, prePost, total time.Duration) {
	m := pario.NewMachine(4)
	global, err := m.Volume.Create(pario.Spec{
		Name: "input", Org: pario.OrgSequential,
		RecordSize: recordSize, NumRecords: records, StripeUnitFS: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	output, err := m.Volume.Create(pario.Spec{
		Name: "output", Org: pario.OrgSequential,
		RecordSize: recordSize, NumRecords: records, StripeUnitFS: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := fem.NewManager(m.Volume, "fem", procs, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.CreateAll(recordSize, records/procs); err != nil {
		log.Fatal(err)
	}

	m.Go("driver", func(p *pario.Proc) {
		// Produce the global input.
		w, err := pario.OpenWriter(global, pario.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, recordSize)
		for r := int64(0); r < records; r++ {
			workload.Record(buf, 1, r)
			if _, err := w.WriteRecord(p, buf); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Close(p); err != nil {
			log.Fatal(err)
		}

		// Pre-processing (sequential).
		partT, err := mgr.Partition(p, global, core.Options{NBufs: 4, IOProcs: 2})
		if err != nil {
			log.Fatal(err)
		}
		// Parallel phase on private files.
		var g pario.Group
		for wk := 0; wk < procs; wk++ {
			wid := wk
			g.Spawn(p.Engine(), fmt.Sprintf("proc-%d", wid), func(c *pario.Proc) {
				f, err := mgr.ProcFile(wid, 0)
				if err != nil {
					log.Fatal(err)
				}
				r, err := pario.OpenReader(f, pario.DefaultOptions())
				if err != nil {
					log.Fatal(err)
				}
				for {
					if _, _, err := r.ReadRecord(c); err != nil {
						break
					}
					c.Sleep(computePer)
				}
				_ = r.Close(c)
			})
		}
		g.Wait(p)
		// Post-processing (sequential).
		mergeT, err := mgr.Merge(p, output, core.Options{NBufs: 4, IOProcs: 2})
		if err != nil {
			log.Fatal(err)
		}
		prePost = partT + mergeT
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return mgr.FileCount() + 2, prePost, m.Engine.Now()
}

// parallelFile runs the paper's way: one PS file, no pre/post passes.
func parallelFile() (files int, total time.Duration) {
	m := pario.NewMachine(4)
	f, err := m.Volume.Create(pario.Spec{
		Name: "data", Org: pario.OrgPartitioned,
		RecordSize: recordSize, NumRecords: records, Parts: procs,
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Go("driver", func(p *pario.Proc) {
		// Producers write straight into their partitions...
		var g pario.Group
		for wk := 0; wk < procs; wk++ {
			wid := wk
			g.Spawn(p.Engine(), fmt.Sprintf("w-%d", wid), func(c *pario.Proc) {
				w, err := pario.OpenPartWriter(f, wid, pario.DefaultOptions())
				if err != nil {
					log.Fatal(err)
				}
				buf := make([]byte, recordSize)
				first, end := f.PartRecordRange(wid)
				for r := first; r < end; r++ {
					workload.Record(buf, 1, r)
					if _, err := w.WriteRecord(c, buf); err != nil {
						log.Fatal(err)
					}
				}
				_ = w.Close(c)
			})
		}
		g.Wait(p)
		// ...and consumers read them back with compute, no merge needed.
		var g2 pario.Group
		for wk := 0; wk < procs; wk++ {
			wid := wk
			g2.Spawn(p.Engine(), fmt.Sprintf("r-%d", wid), func(c *pario.Proc) {
				r, err := pario.OpenPartReader(f, wid, pario.DefaultOptions())
				if err != nil {
					log.Fatal(err)
				}
				for {
					if _, _, err := r.ReadRecord(c); err != nil {
						break
					}
					c.Sleep(computePer)
				}
				_ = r.Close(c)
			})
		}
		g2.Wait(p)
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return 1, m.Engine.Now()
}

func main() {
	femFiles, prePost, femTotal := filePerProcess()
	psFiles, psTotal := parallelFile()
	fmt.Printf("workload: %d records, %d processes, %v compute/record\n\n", records, procs, computePer)
	fmt.Printf("file-per-process (FEM): %3d fs objects, pre+post %v, total %v\n", femFiles, prePost, femTotal)
	fmt.Printf("one PS parallel file:   %3d fs object,  pre+post 0s, total %v\n", psFiles, psTotal)
	fmt.Printf("\nparallel file advantage: %.2fx end-to-end, %d fewer objects to manage\n",
		float64(femTotal)/float64(psTotal), femFiles-psFiles)
}
