// Matrixwrap: wrapped (row-cyclic) storage of a matrix in an IS file —
// the paper's own example for the interleaved organization ("this
// organization would be useful for wrapped storage of a matrix").
//
// Four processes each own every fourth row. They write the matrix in
// parallel, then perform a row-scaling compute pass over their own rows,
// again in parallel, and finally a sequential checker verifies the
// result through the global view.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	pario "repro"
)

const (
	procs = 4
	rows  = 64
	cols  = 32
)

// rowRecord encodes a row of float64s.
func rowRecord(buf []byte, row int, scale float64) {
	for c := 0; c < cols; c++ {
		v := float64(row) + float64(c)/100
		binary.BigEndian.PutUint64(buf[c*8:], math.Float64bits(v*scale))
	}
}

func main() {
	m := pario.NewMachine(procs)
	f, err := m.Volume.Create(pario.Spec{
		Name:         "matrix",
		Org:          pario.OrgInterleaved,
		RecordSize:   cols * 8,
		BlockRecords: 1, // one row per block: stride = row-cyclic
		NumRecords:   rows,
		Parts:        procs,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: parallel wrapped write (process p owns rows p, p+4, ...).
	for w := 0; w < procs; w++ {
		wid := w
		m.Go(fmt.Sprintf("writer-%d", wid), func(p *pario.Proc) {
			wr, err := pario.OpenInterleavedWriter(f, wid, procs, pario.DefaultOptions())
			if err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, cols*8)
			for row := wid; row < rows; row += procs {
				rowRecord(buf, row, 1)
				if _, err := wr.WriteRecord(p, buf); err != nil {
					log.Fatal(err)
				}
			}
			if err := wr.Close(p); err != nil {
				log.Fatal(err)
			}
		})
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	writeDone := m.Engine.Now()

	// Phase 2: compute pass — each process scales its own rows by 2 using
	// the PDA view (read row, modify, write back).
	m2 := pario.NewMachine(procs)
	f2, err := m2.Volume.Create(pario.Spec{
		Name: "matrix", Org: pario.OrgInterleaved, RecordSize: cols * 8,
		BlockRecords: 1, NumRecords: rows, Parts: procs,
	})
	if err != nil {
		log.Fatal(err)
	}
	for w := 0; w < procs; w++ {
		wid := w
		m2.Go(fmt.Sprintf("compute-%d", wid), func(p *pario.Proc) {
			wr, err := pario.OpenInterleavedWriter(f2, wid, procs, pario.DefaultOptions())
			if err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, cols*8)
			for row := wid; row < rows; row += procs {
				rowRecord(buf, row, 2) // the "computed" row
				if _, err := wr.WriteRecord(p, buf); err != nil {
					log.Fatal(err)
				}
			}
			if err := wr.Close(p); err != nil {
				log.Fatal(err)
			}
		})
	}
	if err := m2.Run(); err != nil {
		log.Fatal(err)
	}

	// Phase 3: sequential verification through the S view.
	ctx := pario.NewWall()
	r, err := pario.OpenReader(f2, pario.Options{NBufs: 2})
	if err != nil {
		log.Fatal(err)
	}
	bad := 0
	for {
		data, rec, err := r.ReadRecord(ctx)
		if err != nil {
			break
		}
		for c := 0; c < cols; c++ {
			got := math.Float64frombits(binary.BigEndian.Uint64(data[c*8:]))
			want := (float64(rec) + float64(c)/100) * 2
			if math.Abs(got-want) > 1e-12 {
				bad++
			}
		}
	}
	_ = r.Close(ctx)
	fmt.Printf("wrapped matrix %dx%d over %d processes\n", rows, cols, procs)
	fmt.Printf("parallel write finished at virtual t=%v\n", writeDone)
	fmt.Printf("verification: %d bad elements (want 0)\n", bad)
}
