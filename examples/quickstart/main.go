// Quickstart: create a partitioned (PS) parallel file, have four worker
// processes write their partitions concurrently, then read the result
// back through the conventional global view — the paper's core promise
// that one file serves both parallel and sequential programs.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"

	pario "repro"
)

func main() {
	const (
		workers    = 4
		recordSize = 4096
		records    = 256
	)
	m := pario.NewMachine(workers) // one drive per worker

	f, err := m.Volume.Create(pario.Spec{
		Name:       "results",
		Org:        pario.OrgPartitioned,
		RecordSize: recordSize,
		NumRecords: records,
		Parts:      workers,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Parallel phase: each worker writes its own partition.
	for w := 0; w < workers; w++ {
		wid := w
		m.Go(fmt.Sprintf("worker-%d", wid), func(p *pario.Proc) {
			wr, err := pario.OpenPartWriter(f, wid, pario.DefaultOptions())
			if err != nil {
				log.Fatal(err)
			}
			rec := make([]byte, recordSize)
			first, end := f.PartRecordRange(wid)
			for r := first; r < end; r++ {
				binary.BigEndian.PutUint64(rec, uint64(r)) // payload: record index
				if _, err := wr.WriteRecord(p, rec); err != nil {
					log.Fatal(err)
				}
			}
			if err := wr.Close(p); err != nil {
				log.Fatal(err)
			}
		})
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel write of %d records finished at virtual t=%v\n", records, m.Engine.Now())

	// Sequential phase: a conventional program scans the global view.
	// (Single-goroutine use needs no engine — a Wall context suffices.)
	gr, err := pario.OpenGlobalReader(f, pario.NewWall())
	if err != nil {
		log.Fatal(err)
	}
	var sum, count uint64
	buf := make([]byte, recordSize)
	for {
		if _, err := io.ReadFull(gr, buf); err != nil {
			break
		}
		sum += binary.BigEndian.Uint64(buf)
		count++
	}
	fmt.Printf("global view: %d records, payload checksum %d (expect %d)\n",
		count, sum, uint64(records*(records-1)/2))

	for i, d := range m.Disks {
		st := d.Stats()
		fmt.Printf("drive %d: %d requests, %.1f KiB moved\n", i, st.Requests(), float64(st.Bytes())/1024)
	}
}
