// Workqueue: a self-scheduled (SS) file as a queue with multiple
// servers — the paper's motivating use: "self-scheduled input is
// appropriate for algorithms which select the next available unit of
// work for processing, as in a queue with multiple servers."
//
// Tasks grow progressively harder (service time ramps with task id), so
// a static contiguous split hands one server all the hard work;
// self-scheduling balances the load automatically. The example runs the
// same queue both ways and reports the speedup.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"time"

	pario "repro"
)

const (
	workers    = 4
	tasks      = 128
	recordSize = 256
	minService = time.Millisecond
	maxService = 24 * time.Millisecond
)

// buildQueue fills the task file: record i describes task i.
func buildQueue(m *pario.Machine, name string) *pario.File {
	f, err := m.Volume.Create(pario.Spec{
		Name: name, Org: pario.OrgSelfScheduled,
		RecordSize: recordSize, NumRecords: tasks,
	})
	if err != nil {
		log.Fatal(err)
	}
	return f
}

// serviceOf ramps task difficulty linearly with the id.
func serviceOf(id int64) time.Duration {
	return minService + time.Duration(int64(maxService-minService)*id/tasks)
}

func fill(p *pario.Proc, f *pario.File) {
	w, err := pario.OpenWriter(f, pario.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, recordSize)
	for id := int64(0); id < tasks; id++ {
		binary.BigEndian.PutUint64(buf[0:], uint64(id))
		binary.BigEndian.PutUint64(buf[8:], uint64(serviceOf(id)))
		if _, err := w.WriteRecord(p, buf); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(p); err != nil {
		log.Fatal(err)
	}
}

// selfScheduled runs the queue with SS claims.
func selfScheduled() (time.Duration, []int) {
	m := pario.NewMachine(workers)
	f := buildQueue(m, "tasks")
	counts := make([]int, workers)
	m.Go("driver", func(p *pario.Proc) {
		fill(p, f)
		ss, err := pario.OpenSelfSched(f, pario.SSRead, pario.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		var g pario.Group
		for w := 0; w < workers; w++ {
			wid := w
			g.Spawn(p.Engine(), fmt.Sprintf("server-%d", wid), func(c *pario.Proc) {
				buf := make([]byte, recordSize)
				for {
					if _, err := ss.ReadNext(c, buf); err == io.EOF {
						return
					} else if err != nil {
						log.Fatal(err)
					}
					service := time.Duration(binary.BigEndian.Uint64(buf[8:]))
					c.Sleep(service) // do the work
					counts[wid]++
				}
			})
		}
		g.Wait(p)
		if err := ss.Close(p); err != nil {
			log.Fatal(err)
		}
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return m.Engine.Now(), counts
}

// staticPartition runs the same tasks with a fixed 1/workers split.
func staticPartition() time.Duration {
	m := pario.NewMachine(workers)
	f := buildQueue(m, "tasks")
	m.Go("driver", func(p *pario.Proc) {
		fill(p, f)
		var g pario.Group
		per := tasks / workers
		for w := 0; w < workers; w++ {
			wid := w
			g.Spawn(p.Engine(), fmt.Sprintf("server-%d", wid), func(c *pario.Proc) {
				// Static contiguous share, read via the block-range view.
				r, err := pario.OpenBlockRangeReader(f,
					int64(wid*per)/int64(f.Mapper().BlockRecords()),
					int64((wid+1)*per)/int64(f.Mapper().BlockRecords()),
					pario.DefaultOptions())
				if err != nil {
					log.Fatal(err)
				}
				buf := make([]byte, recordSize)
				_ = buf
				for {
					data, _, err := r.ReadRecord(c)
					if err != nil {
						break
					}
					service := time.Duration(binary.BigEndian.Uint64(data[8:]))
					c.Sleep(service)
				}
				_ = r.Close(c)
			})
		}
		g.Wait(p)
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return m.Engine.Now()
}

func main() {
	ssTime, counts := selfScheduled()
	stTime := staticPartition()
	fmt.Printf("%d tasks, service %v..%v, %d servers\n", tasks, minService, maxService, workers)
	fmt.Printf("self-scheduled: finished at %v, per-server tasks %v\n", ssTime, counts)
	fmt.Printf("static split:   finished at %v\n", stTime)
	fmt.Printf("self-scheduling speedup: %.2fx\n", float64(stTime)/float64(ssTime))
}
