// Workqueue: a self-scheduled (SS) file as a queue with multiple
// servers — the paper's motivating use: "self-scheduled input is
// appropriate for algorithms which select the next available unit of
// work for processing, as in a queue with multiple servers."
//
// Tasks grow progressively harder (service time ramps with task id), so
// a static contiguous split hands one server all the hard work;
// self-scheduling balances the load automatically. The example runs the
// same queue both ways and reports the speedup.
//
// A third section adds result checkpointing: the servers, now a rank
// group, write each round's results collectively. The blocking variant
// stalls every round on WriteAll; the nonblocking variant routes the
// device phase through an I/O server lane (IWriteAll) and computes
// round k+1 while round k's results drain, waiting on the handle only
// before reusing the slot — compute/I/O overlap from the split
// collective, with identical bytes on disk.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"time"

	pario "repro"
)

const (
	workers    = 4
	tasks      = 128
	recordSize = 256
	minService = time.Millisecond
	maxService = 24 * time.Millisecond
)

// buildQueue fills the task file: record i describes task i.
func buildQueue(m *pario.Machine, name string) *pario.File {
	f, err := m.Volume.Create(pario.Spec{
		Name: name, Org: pario.OrgSelfScheduled,
		RecordSize: recordSize, NumRecords: tasks,
	})
	if err != nil {
		log.Fatal(err)
	}
	return f
}

// serviceOf ramps task difficulty linearly with the id.
func serviceOf(id int64) time.Duration {
	return minService + time.Duration(int64(maxService-minService)*id/tasks)
}

func fill(p *pario.Proc, f *pario.File) {
	w, err := pario.OpenWriter(f, pario.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, recordSize)
	for id := int64(0); id < tasks; id++ {
		binary.BigEndian.PutUint64(buf[0:], uint64(id))
		binary.BigEndian.PutUint64(buf[8:], uint64(serviceOf(id)))
		if _, err := w.WriteRecord(p, buf); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(p); err != nil {
		log.Fatal(err)
	}
}

// selfScheduled runs the queue with SS claims.
func selfScheduled() (time.Duration, []int) {
	m := pario.NewMachine(workers)
	f := buildQueue(m, "tasks")
	counts := make([]int, workers)
	m.Go("driver", func(p *pario.Proc) {
		fill(p, f)
		ss, err := pario.OpenSelfSched(f, pario.SSRead, pario.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		var g pario.Group
		for w := 0; w < workers; w++ {
			wid := w
			g.Spawn(p.Engine(), fmt.Sprintf("server-%d", wid), func(c *pario.Proc) {
				buf := make([]byte, recordSize)
				for {
					if _, err := ss.ReadNext(c, buf); err == io.EOF {
						return
					} else if err != nil {
						log.Fatal(err)
					}
					service := time.Duration(binary.BigEndian.Uint64(buf[8:]))
					c.Sleep(service) // do the work
					counts[wid]++
				}
			})
		}
		g.Wait(p)
		if err := ss.Close(p); err != nil {
			log.Fatal(err)
		}
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return m.Engine.Now(), counts
}

// staticPartition runs the same tasks with a fixed 1/workers split.
func staticPartition() time.Duration {
	m := pario.NewMachine(workers)
	f := buildQueue(m, "tasks")
	m.Go("driver", func(p *pario.Proc) {
		fill(p, f)
		var g pario.Group
		per := tasks / workers
		for w := 0; w < workers; w++ {
			wid := w
			g.Spawn(p.Engine(), fmt.Sprintf("server-%d", wid), func(c *pario.Proc) {
				// Static contiguous share, read via the block-range view.
				r, err := pario.OpenBlockRangeReader(f,
					int64(wid*per)/int64(f.Mapper().BlockRecords()),
					int64((wid+1)*per)/int64(f.Mapper().BlockRecords()),
					pario.DefaultOptions())
				if err != nil {
					log.Fatal(err)
				}
				buf := make([]byte, recordSize)
				_ = buf
				for {
					data, _, err := r.ReadRecord(c)
					if err != nil {
						break
					}
					service := time.Duration(binary.BigEndian.Uint64(data[8:]))
					c.Sleep(service)
				}
				_ = r.Close(c)
			})
		}
		g.Wait(p)
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return m.Engine.Now()
}

const (
	rounds     = 8
	resultSize = 4096
)

// checkpointed runs the ramped tasks round by round on a rank group,
// writing each round's result records through a collective — blocking
// WriteAll, or nonblocking IWriteAll through an I/O server lane with
// the next round's compute overlapping the drain. Returns the modeled
// finish time and a digest of the results file.
func checkpointed(nonblocking bool) (time.Duration, uint64) {
	m := pario.NewMachine(workers)
	f, err := m.Volume.Create(pario.Spec{
		Name: "results", Org: pario.OrgGlobalDirect,
		RecordSize: resultSize, BlockRecords: 1, NumRecords: tasks,
		Placement: pario.PlaceStriped, StripeUnitFS: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	group, err := m.Volume.OpenGroup("results")
	if err != nil {
		log.Fatal(err)
	}
	var opts pario.CollectiveOptions
	var srv *pario.IOServer
	if nonblocking {
		srv = pario.NewIOServer(pario.IOServerConfig{Workers: 1})
		opts.Service = srv.AddJob(pario.IOJobConfig{Name: "results"})
		srv.Start(m.Engine)
	}
	col, err := pario.OpenCollective(group, workers, opts)
	if err != nil {
		log.Fatal(err)
	}
	var done pario.Group
	done.Add(workers)
	perRound := tasks / rounds
	perRank := perRound / workers
	m.GoRanks(workers, "server", func(r *pario.Rank) {
		defer done.Done(r.Proc)
		var pending *pario.IOHandle
		for k := 0; k < rounds; k++ {
			first := int64(k*perRound + r.Rank()*perRank)
			buf := make([]byte, perRank*resultSize)
			for i := int64(0); i < int64(perRank); i++ {
				id := first + i
				r.Proc.Sleep(serviceOf(id)) // do the work
				binary.BigEndian.PutUint64(buf[i*resultSize:], uint64(id*id))
			}
			reqs := []pario.VecReq{{File: 0, Vec: pario.Vec{{Block: first, N: int64(perRank)}}}}
			if !nonblocking {
				if err := col.WriteAll(r, reqs, buf); err != nil {
					log.Fatal(err)
				}
				continue
			}
			// Round k-1's results are still draining on the server while
			// this round computed; rendezvous only now.
			if pending != nil {
				if err := pending.Wait(r); err != nil {
					log.Fatal(err)
				}
			}
			h, err := col.IWriteAll(r, reqs, buf)
			if err != nil {
				log.Fatal(err)
			}
			pending = h
		}
		if pending != nil {
			if err := pending.Wait(r); err != nil {
				log.Fatal(err)
			}
		}
	})
	m.Go("driver", func(p *pario.Proc) {
		done.Wait(p)
		if srv != nil {
			srv.Stop(p)
		}
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	finished := m.Engine.Now()

	// Digest the results file (FNV-1a) so the two variants' images can
	// be compared; the global view reads it as one byte stream.
	rd, err := pario.OpenGlobalReader(f, pario.NewWall())
	if err != nil {
		log.Fatal(err)
	}
	sum := uint64(14695981039346656037)
	buf := make([]byte, resultSize)
	for {
		n, err := rd.Read(buf)
		for _, b := range buf[:n] {
			sum = (sum ^ uint64(b)) * 1099511628211
		}
		if err != nil {
			break
		}
	}
	return finished, sum
}

func main() {
	ssTime, counts := selfScheduled()
	stTime := staticPartition()
	fmt.Printf("%d tasks, service %v..%v, %d servers\n", tasks, minService, maxService, workers)
	fmt.Printf("self-scheduled: finished at %v, per-server tasks %v\n", ssTime, counts)
	fmt.Printf("static split:   finished at %v\n", stTime)
	fmt.Printf("self-scheduling speedup: %.2fx\n", float64(stTime)/float64(ssTime))

	blockT, blockSum := checkpointed(false)
	nbT, nbSum := checkpointed(true)
	fmt.Printf("\nresult checkpointing, %d rounds:\n", rounds)
	fmt.Printf("blocking WriteAll:        finished at %v\n", blockT)
	fmt.Printf("nonblocking IWriteAll:    finished at %v (compute overlaps the drain)\n", nbT)
	fmt.Printf("overlap speedup: %.2fx, images identical: %v\n", float64(blockT)/float64(nbT), blockSum == nbSum)
}
