// Benchmark harness: one benchmark per reproduced figure/table (the
// drivers live in internal/experiments; tables print via cmd/pariobench)
// plus microbenchmarks of the core access paths. Experiment benches
// report the headline metric of their table via b.ReportMetric so the
// paper's shapes are visible in benchmark output.
package pario_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	pario "repro"
	"repro/internal/blockio"
	"repro/internal/collective"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/mpp"
	"repro/internal/pfs"
	"repro/internal/probe"
	"repro/internal/sim"
)

// benchExperiment runs one experiment driver per iteration and reports
// selected metrics from the final run.
func benchExperiment(b *testing.B, id string, report ...string) {
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, key := range report {
		if v, ok := res.Metrics[key]; ok {
			b.ReportMetric(v, key)
		}
	}
}

// BenchmarkFigure1Patterns regenerates Figure 1 (access patterns of the
// S/PS/IS/SS organizations) and validates all four.
func BenchmarkFigure1Patterns(b *testing.B) {
	benchExperiment(b, "f1")
}

// BenchmarkE1Striping regenerates the E1 table (type-S bandwidth vs
// device count, §4 striping claim).
func BenchmarkE1Striping(b *testing.B) {
	benchExperiment(b, "e1", "read_speedup_d4", "read_speedup_d16", "read_mbps_d16")
}

// BenchmarkE2SelfSched regenerates the E2 table (early pointer release
// vs serialized self-scheduling, §4).
func BenchmarkE2SelfSched(b *testing.B) {
	benchExperiment(b, "e2", "speedup_c0ms", "speedup_c10ms")
}

// BenchmarkE3DevicePerProcess regenerates the E3 table (PS/IS processes
// proceed at independent rates on private devices, §4).
func BenchmarkE3DevicePerProcess(b *testing.B) {
	benchExperiment(b, "e3", "fast_proc_slowdown")
}

// BenchmarkE4SeekInterference regenerates the E4 table (devices <
// processes seek interference and on-device packing policies, §4).
func BenchmarkE4SeekInterference(b *testing.B) {
	benchExperiment(b, "e4", "mbps_d16_contiguous", "mbps_d1_contiguous")
}

// BenchmarkE5Decluster regenerates the E5 table (declustering vs whole
// blocks under skewed access, §4 / Livny et al.).
func BenchmarkE5Decluster(b *testing.B) {
	benchExperiment(b, "e5", "s_d4_zipf(2.0)_whole", "s_d4_zipf(2.0)_declustered")
}

// BenchmarkE6Buffering regenerates the E6 table (multiple buffering,
// read-ahead and deferred writing, §4).
func BenchmarkE6Buffering(b *testing.B) {
	benchExperiment(b, "e6")
}

// BenchmarkE7GlobalView regenerates the E7 table (global-view bandwidth
// by placement; PS serial, IS buffer-starved degradation, §4).
func BenchmarkE7GlobalView(b *testing.B) {
	benchExperiment(b, "e7")
}

// BenchmarkE8Reliability regenerates the E8 tables (MTBF arithmetic,
// Monte-Carlo loss rates, inject/recover scenarios, §5).
func BenchmarkE8Reliability(b *testing.B) {
	benchExperiment(b, "e8", "mtbf_h_n10", "mtbf_h_n100")
}

// BenchmarkE9ViewMismatch regenerates the E9 table (alternate view vs
// global fallback vs copy conversion, §5).
func BenchmarkE9ViewMismatch(b *testing.B) {
	benchExperiment(b, "e9", "alt_four_s", "copy_four_s")
}

// BenchmarkE10Boundary regenerates the E10 table (boundary replication
// vs in-memory caching, §5).
func BenchmarkE10Boundary(b *testing.B) {
	benchExperiment(b, "e10", "rep_four_h8_s", "cache_four_h8_s")
}

// BenchmarkE11FemBaseline regenerates the E11 table (file-per-process
// baseline vs one PS parallel file, §3).
func BenchmarkE11FemBaseline(b *testing.B) {
	benchExperiment(b, "e11", "files_p64_f4")
}

// --- Microbenchmarks of the hot paths (real time, wall context). ---

// BenchmarkDeviceReadBlock measures the untimed device block path.
func BenchmarkDeviceReadBlock(b *testing.B) {
	d := pario.NewDisk(pario.DiskConfig{})
	ctx := pario.NewWall()
	buf := make([]byte, d.Geometry().BlockSize)
	if err := d.WriteBlock(ctx, 0, buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ReadBlock(ctx, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamWriteRecord measures the sequential record write path
// (block assembly + layout mapping + device copy).
func BenchmarkStreamWriteRecord(b *testing.B) {
	disks := make([]*pario.Disk, 4)
	for i := range disks {
		disks[i] = pario.NewDisk(pario.DiskConfig{Name: fmt.Sprintf("d%d", i)})
	}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		b.Fatal(err)
	}
	const records = 1 << 13
	f, err := vol.Create(pario.Spec{Name: "bench", RecordSize: 512, NumRecords: records})
	if err != nil {
		b.Fatal(err)
	}
	ctx := pario.NewWall()
	w, err := pario.OpenWriter(f, pario.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rec := make([]byte, 512)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.WriteRecord(ctx, rec); err != nil {
			// File full: rewind by reopening the write view.
			if cerr := w.Close(ctx); cerr != nil {
				b.Fatal(cerr)
			}
			w, err = pario.OpenWriter(f, pario.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := w.WriteRecord(ctx, rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStreamReadRecord measures the sequential record read path.
func BenchmarkStreamReadRecord(b *testing.B) {
	disks := make([]*pario.Disk, 4)
	for i := range disks {
		disks[i] = pario.NewDisk(pario.DiskConfig{Name: fmt.Sprintf("d%d", i)})
	}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		b.Fatal(err)
	}
	const records = 4096
	f, err := vol.Create(pario.Spec{Name: "bench", RecordSize: 512, NumRecords: records})
	if err != nil {
		b.Fatal(err)
	}
	ctx := pario.NewWall()
	w, err := pario.OpenWriter(f, pario.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rec := make([]byte, 512)
	for i := 0; i < records; i++ {
		if _, err := w.WriteRecord(ctx, rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(512)
	b.ResetTimer()
	r, err := pario.OpenReader(f, pario.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := r.ReadRecord(ctx); err == io.EOF {
			_ = r.Close(ctx)
			r, err = pario.OpenReader(f, pario.Options{})
			if err != nil {
				b.Fatal(err)
			}
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectReadRecordAt measures the cached random-access path.
func BenchmarkDirectReadRecordAt(b *testing.B) {
	disks := []*pario.Disk{pario.NewDisk(pario.DiskConfig{})}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		b.Fatal(err)
	}
	const records = 1024
	f, err := vol.Create(pario.Spec{Name: "bench", RecordSize: 512, NumRecords: records})
	if err != nil {
		b.Fatal(err)
	}
	ctx := pario.NewWall()
	d, err := pario.OpenDirect(f, pario.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 512)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ReadRecordAt(ctx, int64(i)%records, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// runScaleScenario models one contended pipelined collective checkpoint
// at the given scale — every rank writes two strided blocks through a
// chunked collective over a drives-wide direct store, with per-process
// links and a shared bisection pool both charged — and returns the final
// modeled time. This is the shape the engine-scaling work is judged on:
// ranks × drives up to 4096 × 256 in wall-clock seconds. A non-nil rec
// is attached across every layer (BenchmarkTraceOverhead measures its
// wall-clock cost; modeled time must not change).
func runScaleScenario(tb testing.TB, ranks, drives int, rec *probe.Recorder) time.Duration {
	const bs = 256
	e := sim.NewEngine()
	geom := device.Geometry{BlockSize: bs, BlocksPerCyl: 8, Cylinders: 64}
	disks := make([]*device.Disk, drives)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name: fmt.Sprintf("d%d", i), Geometry: geom, Engine: e,
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		tb.Fatal(err)
	}
	if rec != nil {
		e.SetProbe(rec)
		for _, d := range disks {
			d.SetProbe(rec)
		}
		store.SetProbe(rec)
	}
	vol := pfs.NewVolume(store)
	if _, err := vol.Create(pfs.Spec{
		Name: "chk", Org: pfs.OrgSequential, RecordSize: bs,
		NumRecords: int64(2 * ranks), Placement: pfs.PlaceStriped, StripeUnitFS: 1,
	}); err != nil {
		tb.Fatal(err)
	}
	g, err := vol.OpenGroup("chk")
	if err != nil {
		tb.Fatal(err)
	}
	col, err := collective.Open(g, ranks, collective.Options{ChunkBytes: 8 * bs})
	if err != nil {
		tb.Fatal(err)
	}
	mg, join := mpp.Run(e, ranks, "w", func(p *mpp.Proc) {
		r := int64(p.Rank())
		reqs := []collective.VecReq{{File: 0, Vec: blockio.Vec{
			{Block: r, N: 1, BufOff: 0},
			{Block: r + int64(ranks), N: 1, BufOff: bs},
		}}}
		buf := make([]byte, 2*bs)
		for i := range buf {
			buf[i] = byte(int(r) + i)
		}
		if err := col.WriteAll(p, reqs, buf); err != nil {
			tb.Errorf("rank %d: %v", p.Rank(), err)
		}
	})
	mg.SetLink(2*time.Microsecond, 100e6)
	mg.SetBisection(500e6)
	if rec != nil {
		mg.SetProbe(rec, "w")
	}
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		tb.Fatal(err)
	}
	return e.Now()
}

// BenchmarkEngineScale drives the 4096-rank × 256-drive contended
// pipelined collective and reports how many wall-clock seconds one
// modeled second costs — the engine-scaling headline metric. The
// scenario must stay in single-digit seconds per iteration.
func BenchmarkEngineScale(b *testing.B) {
	var modeled time.Duration
	for i := 0; i < b.N; i++ {
		modeled = runScaleScenario(b, 4096, 256, nil)
	}
	b.ReportMetric(modeled.Seconds(), "modeled_s")
	b.ReportMetric(b.Elapsed().Seconds()/(modeled.Seconds()*float64(b.N)), "wall_s/modeled_s")
}

// BenchmarkTraceOverhead measures what the flight recorder costs on the
// engine-scaling scenario: the detached (nil-recorder, zero-alloc hooks)
// path against a live recorder capturing every layer. The "on" variant
// also reports spans recorded per run; modeled time is identical either
// way — only wall time may differ.
func BenchmarkTraceOverhead(b *testing.B) {
	const ranks, drives = 1024, 64
	b.Run("off", func(b *testing.B) {
		var modeled time.Duration
		for i := 0; i < b.N; i++ {
			modeled = runScaleScenario(b, ranks, drives, nil)
		}
		b.ReportMetric(modeled.Seconds(), "modeled_s")
	})
	b.Run("on", func(b *testing.B) {
		var modeled time.Duration
		var spans int
		for i := 0; i < b.N; i++ {
			rec := probe.New()
			modeled = runScaleScenario(b, ranks, drives, rec)
			spans = len(rec.Spans())
		}
		b.ReportMetric(modeled.Seconds(), "modeled_s")
		b.ReportMetric(float64(spans), "spans")
	})
}

// TestTraceOverheadModeledTimeIdentical pins the overhead benchmark's
// core claim outside the bench harness: tracing the scale scenario does
// not move its modeled clock.
func TestTraceOverheadModeledTimeIdentical(t *testing.T) {
	const ranks, drives = 256, 16
	off := runScaleScenario(t, ranks, drives, nil)
	rec := probe.New()
	on := runScaleScenario(t, ranks, drives, rec)
	if off != on {
		t.Fatalf("recorder moved modeled time: %v off vs %v on", off, on)
	}
	if len(rec.Spans()) == 0 {
		t.Fatal("live recorder captured no spans")
	}
}

// BenchmarkVirtualEngine measures scheduler overhead: processes doing
// nothing but sleeping (events per second).
func BenchmarkVirtualEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := pario.NewEngine()
		for p := 0; p < 8; p++ {
			e.Go("p", func(pr *pario.Proc) {
				for s := 0; s < 100; s++ {
					pr.Sleep(1)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
