// Benchmark harness: one benchmark per reproduced figure/table (the
// drivers live in internal/experiments; tables print via cmd/pariobench)
// plus microbenchmarks of the core access paths. Experiment benches
// report the headline metric of their table via b.ReportMetric so the
// paper's shapes are visible in benchmark output.
package pario_test

import (
	"fmt"
	"io"
	"testing"

	pario "repro"
	"repro/internal/experiments"
)

// benchExperiment runs one experiment driver per iteration and reports
// selected metrics from the final run.
func benchExperiment(b *testing.B, id string, report ...string) {
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, key := range report {
		if v, ok := res.Metrics[key]; ok {
			b.ReportMetric(v, key)
		}
	}
}

// BenchmarkFigure1Patterns regenerates Figure 1 (access patterns of the
// S/PS/IS/SS organizations) and validates all four.
func BenchmarkFigure1Patterns(b *testing.B) {
	benchExperiment(b, "f1")
}

// BenchmarkE1Striping regenerates the E1 table (type-S bandwidth vs
// device count, §4 striping claim).
func BenchmarkE1Striping(b *testing.B) {
	benchExperiment(b, "e1", "read_speedup_d4", "read_speedup_d16", "read_mbps_d16")
}

// BenchmarkE2SelfSched regenerates the E2 table (early pointer release
// vs serialized self-scheduling, §4).
func BenchmarkE2SelfSched(b *testing.B) {
	benchExperiment(b, "e2", "speedup_c0ms", "speedup_c10ms")
}

// BenchmarkE3DevicePerProcess regenerates the E3 table (PS/IS processes
// proceed at independent rates on private devices, §4).
func BenchmarkE3DevicePerProcess(b *testing.B) {
	benchExperiment(b, "e3", "fast_proc_slowdown")
}

// BenchmarkE4SeekInterference regenerates the E4 table (devices <
// processes seek interference and on-device packing policies, §4).
func BenchmarkE4SeekInterference(b *testing.B) {
	benchExperiment(b, "e4", "mbps_d16_contiguous", "mbps_d1_contiguous")
}

// BenchmarkE5Decluster regenerates the E5 table (declustering vs whole
// blocks under skewed access, §4 / Livny et al.).
func BenchmarkE5Decluster(b *testing.B) {
	benchExperiment(b, "e5", "s_d4_zipf(2.0)_whole", "s_d4_zipf(2.0)_declustered")
}

// BenchmarkE6Buffering regenerates the E6 table (multiple buffering,
// read-ahead and deferred writing, §4).
func BenchmarkE6Buffering(b *testing.B) {
	benchExperiment(b, "e6")
}

// BenchmarkE7GlobalView regenerates the E7 table (global-view bandwidth
// by placement; PS serial, IS buffer-starved degradation, §4).
func BenchmarkE7GlobalView(b *testing.B) {
	benchExperiment(b, "e7")
}

// BenchmarkE8Reliability regenerates the E8 tables (MTBF arithmetic,
// Monte-Carlo loss rates, inject/recover scenarios, §5).
func BenchmarkE8Reliability(b *testing.B) {
	benchExperiment(b, "e8", "mtbf_h_n10", "mtbf_h_n100")
}

// BenchmarkE9ViewMismatch regenerates the E9 table (alternate view vs
// global fallback vs copy conversion, §5).
func BenchmarkE9ViewMismatch(b *testing.B) {
	benchExperiment(b, "e9", "alt_four_s", "copy_four_s")
}

// BenchmarkE10Boundary regenerates the E10 table (boundary replication
// vs in-memory caching, §5).
func BenchmarkE10Boundary(b *testing.B) {
	benchExperiment(b, "e10", "rep_four_h8_s", "cache_four_h8_s")
}

// BenchmarkE11FemBaseline regenerates the E11 table (file-per-process
// baseline vs one PS parallel file, §3).
func BenchmarkE11FemBaseline(b *testing.B) {
	benchExperiment(b, "e11", "files_p64_f4")
}

// --- Microbenchmarks of the hot paths (real time, wall context). ---

// BenchmarkDeviceReadBlock measures the untimed device block path.
func BenchmarkDeviceReadBlock(b *testing.B) {
	d := pario.NewDisk(pario.DiskConfig{})
	ctx := pario.NewWall()
	buf := make([]byte, d.Geometry().BlockSize)
	if err := d.WriteBlock(ctx, 0, buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ReadBlock(ctx, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamWriteRecord measures the sequential record write path
// (block assembly + layout mapping + device copy).
func BenchmarkStreamWriteRecord(b *testing.B) {
	disks := make([]*pario.Disk, 4)
	for i := range disks {
		disks[i] = pario.NewDisk(pario.DiskConfig{Name: fmt.Sprintf("d%d", i)})
	}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		b.Fatal(err)
	}
	const records = 1 << 13
	f, err := vol.Create(pario.Spec{Name: "bench", RecordSize: 512, NumRecords: records})
	if err != nil {
		b.Fatal(err)
	}
	ctx := pario.NewWall()
	w, err := pario.OpenWriter(f, pario.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rec := make([]byte, 512)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.WriteRecord(ctx, rec); err != nil {
			// File full: rewind by reopening the write view.
			if cerr := w.Close(ctx); cerr != nil {
				b.Fatal(cerr)
			}
			w, err = pario.OpenWriter(f, pario.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := w.WriteRecord(ctx, rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStreamReadRecord measures the sequential record read path.
func BenchmarkStreamReadRecord(b *testing.B) {
	disks := make([]*pario.Disk, 4)
	for i := range disks {
		disks[i] = pario.NewDisk(pario.DiskConfig{Name: fmt.Sprintf("d%d", i)})
	}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		b.Fatal(err)
	}
	const records = 4096
	f, err := vol.Create(pario.Spec{Name: "bench", RecordSize: 512, NumRecords: records})
	if err != nil {
		b.Fatal(err)
	}
	ctx := pario.NewWall()
	w, err := pario.OpenWriter(f, pario.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rec := make([]byte, 512)
	for i := 0; i < records; i++ {
		if _, err := w.WriteRecord(ctx, rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(512)
	b.ResetTimer()
	r, err := pario.OpenReader(f, pario.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := r.ReadRecord(ctx); err == io.EOF {
			_ = r.Close(ctx)
			r, err = pario.OpenReader(f, pario.Options{})
			if err != nil {
				b.Fatal(err)
			}
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectReadRecordAt measures the cached random-access path.
func BenchmarkDirectReadRecordAt(b *testing.B) {
	disks := []*pario.Disk{pario.NewDisk(pario.DiskConfig{})}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		b.Fatal(err)
	}
	const records = 1024
	f, err := vol.Create(pario.Spec{Name: "bench", RecordSize: 512, NumRecords: records})
	if err != nil {
		b.Fatal(err)
	}
	ctx := pario.NewWall()
	d, err := pario.OpenDirect(f, pario.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 512)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ReadRecordAt(ctx, int64(i)%records, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVirtualEngine measures scheduler overhead: processes doing
// nothing but sleeping (events per second).
func BenchmarkVirtualEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := pario.NewEngine()
		for p := 0; p < 8; p++ {
			e.Go("p", func(pr *pario.Proc) {
				for s := 0; s < 100; s++ {
					pr.Sleep(1)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
