// Collective-I/O acceptance: an 8-rank strided checkpoint write — every
// rank owns the records ≡ rank (mod 8) of a unit-1 declustered file —
// must cut device requests by ≥4× and improve modeled aggregate
// throughput by ≥2× when issued as a two-phase collective instead of
// independent per-rank vectored writes. These are the ISSUE 3 acceptance
// numbers, enforced so they cannot regress.
//
// The independent baseline is already fully vectored (each rank one
// WriteVec): its problem is not descriptor granularity but visibility —
// each rank's blocks are physically strided by the number of ranks
// sharing its device, so no rank can merge anything, and the drives see
// one request per record. The collective's aggregators each own a
// contiguous file domain and issue one gather request per device.
package pario_test

import (
	"testing"
	"time"

	pario "repro"
)

// checkpointResult is one measured 8-rank checkpoint write.
type checkpointResult struct {
	requests int64
	elapsed  time.Duration
	bytes    int64
}

const (
	ckptRanks   = 8
	ckptRecords = 1024 // 4 KiB records = fs blocks (unit-1 declustered)
)

// runCollectiveCheckpoint writes the strided checkpoint over 4 default
// 1989 drives, collectively or independently, and verifies the file
// contents afterwards. The interconnect is modeled at 100 MB/s with 10 µs
// per message — generous 1989 supercomputer numbers, and charged only to
// the collective path (the independent path does not communicate).
func runCollectiveCheckpoint(tb testing.TB, collective bool) checkpointResult {
	tb.Helper()
	m := pario.NewMachine(4)
	f, err := m.Volume.Create(pario.Spec{
		Name: "ckpt", Org: pario.OrgGlobalDirect,
		RecordSize: 4096, BlockRecords: 1, NumRecords: ckptRecords,
		Placement: pario.PlaceStriped, StripeUnitFS: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	group, err := m.Volume.OpenGroup("ckpt")
	if err != nil {
		tb.Fatal(err)
	}
	col, err := pario.OpenCollective(group, ckptRanks, pario.CollectiveOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	rg := m.GoRanks(ckptRanks, "rank", func(r *pario.Rank) {
		rank := int64(r.Rank())
		var vec pario.Vec
		var off int64
		for b := rank; b < ckptRecords; b += ckptRanks {
			vec = append(vec, pario.VecSeg{Block: b, N: 1, BufOff: off})
			off += 4096
		}
		buf := make([]byte, off)
		for i, sg := range vec {
			buf[int64(i)*4096] = byte(sg.Block)
			buf[int64(i)*4096+1] = byte(sg.Block >> 8)
		}
		if collective {
			if err := col.WriteAll(r, []pario.VecReq{{File: 0, Vec: vec}}, buf); err != nil {
				tb.Errorf("rank %d: %v", rank, err)
			}
			return
		}
		if err := f.Set().WriteVec(r.Proc, vec, buf); err != nil {
			tb.Errorf("rank %d: %v", rank, err)
		}
	})
	rg.SetLink(10*time.Microsecond, 100e6)
	if err := m.Run(); err != nil {
		tb.Fatal(err)
	}
	var res checkpointResult
	for _, d := range m.Disks {
		res.requests += d.Stats().Requests()
	}
	res.elapsed = m.Engine.Now()
	res.bytes = ckptRecords * 4096
	// Same bytes on disk either way.
	ctx := pario.NewWall()
	blk := make([]byte, 4096)
	for b := int64(0); b < ckptRecords; b++ {
		if err := f.Set().ReadBlock(ctx, b, blk); err != nil {
			tb.Fatal(err)
		}
		if blk[0] != byte(b) || blk[1] != byte(b>>8) {
			tb.Fatalf("block %d corrupt after checkpoint (collective=%v)", b, collective)
		}
	}
	return res
}

// TestCollectiveCoalescingWin enforces the acceptance criteria: ≥4×
// fewer device requests and ≥2× modeled aggregate throughput for the
// 8-rank strided collective write versus the same accesses issued
// independently through WriteVec. (DefaultOptions timing for
// non-collective paths is pinned separately by the experiments suite,
// which reproduces the paper's modeled shapes bit-for-bit.)
func TestCollectiveCoalescingWin(t *testing.T) {
	indep := runCollectiveCheckpoint(t, false)
	coll := runCollectiveCheckpoint(t, true)
	if indep.requests == 0 || coll.requests == 0 {
		t.Fatalf("no requests measured: %+v %+v", indep, coll)
	}
	reqRatio := float64(indep.requests) / float64(coll.requests)
	tpRatio := indep.elapsed.Seconds() / coll.elapsed.Seconds()
	t.Logf("requests %d -> %d (%.1fx fewer)", indep.requests, coll.requests, reqRatio)
	t.Logf("elapsed %v -> %v (throughput %.2fx: %.2f -> %.2f MB/s)",
		indep.elapsed, coll.elapsed, tpRatio,
		float64(indep.bytes)/1e6/indep.elapsed.Seconds(),
		float64(coll.bytes)/1e6/coll.elapsed.Seconds())
	if reqRatio < 4 {
		t.Errorf("request reduction %.2fx < 4x", reqRatio)
	}
	if tpRatio < 2 {
		t.Errorf("throughput improvement %.2fx < 2x", tpRatio)
	}
}

// BenchmarkCollectiveCheckpoint tracks the checkpoint trajectory:
// modeled MB/s and device requests for the independent and collective
// paths.
func BenchmarkCollectiveCheckpoint(b *testing.B) {
	for _, mode := range []struct {
		name       string
		collective bool
	}{{"independent", false}, {"collective", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var res checkpointResult
			for i := 0; i < b.N; i++ {
				res = runCollectiveCheckpoint(b, mode.collective)
			}
			b.ReportMetric(float64(res.bytes)/1e6/res.elapsed.Seconds(), "vMB/s")
			b.ReportMetric(float64(res.requests), "requests")
		})
	}
}
