// Package pario is a Go reproduction of the parallel file system design
// from T. W. Crockett, "File Concepts for Parallel I/O" (ICASE Interim
// Report 7 / NASA CR-181843, 1989).
//
// It provides parallel files — files designed for concurrent access by
// the processes of a parallel program — over an array of simulated
// direct-access storage devices, with the paper's six standard
// organizations as access methods:
//
//	S    sequential            OpenReader / OpenWriter
//	PS   partitioned           OpenPartReader / OpenPartWriter
//	IS   interleaved (wrapped) OpenInterleavedReader / OpenInterleavedWriter
//	SS   self-scheduled        OpenSelfSched (shared handle)
//	GDA  global direct access  OpenDirect
//	PDA  partitioned direct    OpenDirectPart
//
// Every file also presents the paper's global view — a conventional
// sequential byte stream — through OpenGlobalReader/OpenGlobalWriter, so
// ordinary sequential software can consume parallel files.
//
// # Extent I/O
//
// Every layer moves data in extents — runs of physically contiguous
// blocks — as well as single blocks. A Disk services a contiguous run
// as one queued request (one controller overhead, one seek, one
// rotational latency, then N blocks at the streaming rate); layouts
// decompose any logical block range into per-device physically
// contiguous runs in closed form (blockio.Layout.MapRun); and ranged
// Set operations issue those runs in parallel across devices. Stream
// access methods opt in through Options.ExtentBlocks: prefetchers and
// write-behind then move whole extents per device request, which cuts
// the modeled per-request overhead of a sequential scan by the
// coalescing factor. The default remains one block per request, the
// paper's model; see BenchmarkExtentCoalescing for the measured win.
//
// # Vectored I/O
//
// Extent I/O only coalesces runs that are contiguous in both the
// logical file and the caller's buffer. Declustered layouts
// (StripeUnitFS smaller than the transfer) and strided access patterns
// break that, so the whole data-movement spine is built on a
// scatter/gather request descriptor instead: a Vec lists (logical block
// range, buffer offset) segments in any order, and Set.ReadVec/WriteVec
// merge the pieces that land physically adjacent on one device — across
// segments, regardless of logical adjacency — into gather runs
// (listio-style coalescing). A disk services a gather run as one queued
// request (one overhead + seek + rotational latency, then N blocks at
// the streaming rate) scattering into or gathering from the strided
// buffer, and every Store implementation (plain disks, parity,
// mirroring) supports the vectored run methods. Stream prefetchers
// route each extent through the same descriptor, so a unit-1
// declustered scan collapses to one request per device per extent; the
// direct-access handles batch record ranges through
// ReadRecordsAt/WriteRecordsAt, whose cache faults fetch a request's
// missing span as one vectored read. See BenchmarkVectoredScan and
// `pariosim -scenario noncontig` for the measured win.
//
// # Collective I/O
//
// Vectored descriptors stop at one process and one file. The collective
// layer lifts both limits with two-phase collective I/O in the style of
// MPI-IO's noncontiguous-access optimization: the ranks of a parallel
// program (GoRanks / internal/mpp) each submit a request list — block
// ranges or record ranges over one or several files of a FileGroup
// sharing the device array — and OpenCollective's handle executes them
// together. The union access footprint is split into contiguous file
// domains, one per aggregator rank; ranks exchange their pieces with the
// aggregators over the modeled interconnect (AlltoallvSparse with per-byte
// link cost, RankGroup.SetLink); and each aggregator issues its whole
// domain as one cross-file batch (BatchVec), merging pieces that are
// physically adjacent on a device into single requests even across
// files. An 8-rank strided checkpoint that costs one device request per
// record independently collapses to one request per device per
// aggregator — trading cheap interconnect traffic for expensive device
// requests; TestCollectiveCoalescingWin enforces ≥4× fewer requests and
// ≥2× modeled throughput, and `pariosim -scenario collective` prints the
// comparison. Independent (non-collective) paths are untouched: with the
// default free link model their timing stays bit-identical to the
// paper's.
//
// # Contention-aware collective I/O
//
// Interconnect traffic stops being cheap once the network is shared.
// RankGroup.SetBisection models a shared-link (bisection bandwidth)
// pool: every collective charges the exchange's total cross-link volume
// against the pool, so exchange time scales with rank count × message
// volume the way real interconnects contend (self-messages are local
// copies and never charged; SetLink's per-process costs compose on
// top). Under contention, aggregator placement matters:
// CollectiveOptions.Locality assigns each file domain to the rank
// owning the largest share of its footprint instead of round-robin rank
// order, so nearly-aligned access patterns keep most bytes local —
// Collective.LastStats reports the measured split (bytes moved vs bytes
// local) and RankGroup.Traffic the link volume. TestLocalityWin
// enforces ≥2× fewer bytes moved and better modeled time on a contended
// 8-rank checkpoint; `pariosim -scenario contended` sweeps rank count ×
// link bandwidth. CollectiveOptions.LastWriterWins additionally offers
// MPI-IO-style deterministic resolution of cross-rank write overlaps
// (the outcome is as if ranks wrote in rank order). All knobs are
// opt-in; the free, round-robin default stays bit-identical
// (TestDefaultModelPinned).
//
// # Chunked two-phase I/O
//
// The single-shot collective is still a barrier: plan, then the WHOLE
// exchange, then the WHOLE access, so the drives idle while bytes cross
// the interconnect and the interconnect idles while the drives stream.
// CollectiveOptions.ChunkBytes bounds each aggregator's staging memory
// (ROMIO's cb_buffer_size) and turns the collective into a software
// pipeline: every file domain is cut into chunk-aligned sub-domains and
// the exchange of chunk k+1 runs concurrently with the device access of
// chunk k (reads mirror this — the access of chunk k+1 overlaps the
// delivery of chunk k), double-buffered through two chunk staging
// buffers per domain. The chunked exchange charges per-message setup
// once per communicating pair for the whole collective (not per chunk),
// concurrent exchanges share the bisection pool's reservation timeline
// instead of each seeing its full bandwidth (pools can even be shared
// between rank groups via RankGroup.SetBisectionPool), and each
// domain's device requests come from a BatchPlan prepared once — mapped,
// sorted and merged up front — so chunking never re-plans. The price is
// per-chunk request overhead; the win is overlap, reported by
// Collective.LastStats (ExchangeTime / AccessTime / Overlap) and
// enforced by TestPipelineWin (≥1.3× modeled time on contended
// checkpoints, link-bound and disk-bound). `pariosim -scenario
// pipeline` prints the comparison; ChunkBytes 0 (the default) keeps the
// single-shot schedule bit-identical.
//
// # I/O as a service (nonblocking collectives, multi-job QoS)
//
// Every collective so far is synchronous: the calling ranks themselves
// drive the device phase and block until it drains. NewIOServer turns
// the device array into a service in the style of dedicated I/O nodes
// (ViPIOS, PVFS servers): server processes own device access, each
// client job gets its own request lane (IOServer.AddJob), and the
// server multiplexes lanes under a pluggable QoS policy — IOFIFO
// (arrival order), IOFairShare (start-time fair queuing over served
// bytes, weighted by IOJobConfig.Weight), IOPriority (strict priority
// levels) — with optional per-lane bandwidth caps (BytesPerSec, a
// leaky bucket over virtual time) and admission control (QueueDepth
// parks the submitter, back-pressure rather than error). A collective
// opened with CollectiveOptions.Service routes its device phase
// through a lane and gains the split-collective forms
// Collective.IWriteAll / IReadAll: plan and exchange run inline (they
// are collective by nature), the device batches are enqueued, and the
// returned IOHandle lets every rank overlap its own computation before
// the collective Wait (Test polls locally). Outcomes are
// data-identical to the blocking calls under every policy — write
// domains are final before submission and disjoint by construction —
// enforced by TestDifferentialMultijob (scheduled == serialized ==
// reference model, 18 seeded scenarios). IOJob.Stats reports per-job
// served bytes, busy time and latency percentiles; TestMultijobQoS
// enforces the QoS wins (fair-share bounds a victim job's p99 under a
// bully's backlog; strict priority cuts it ≥2× vs FIFO) and
// TestMultijobDeterminism pins bit-identical stats across runs.
// Everything is opt-in: without a Service, collectives and their
// modeled times are unchanged (TestDefaultModelPinned).
//
// # Data sieving & strategy selection
//
// Vectored I/O issues one device request per physically contiguous
// gather run — optimal when runs are long, but every hole in a pattern
// costs a full request (overhead + seek + rotational latency).
// Set.ReadVecSieved and Set.WriteVecSieved instead move each device's
// whole covering span as ONE request (two for writes: a
// read-modify-write, serialized per device through ordered locks so
// concurrent sieved writers with disjoint blocks stay safe),
// scattering the requested pieces straight into the caller's buffer
// and the hole blocks into pooled scratch — ROMIO-style data sieving.
// No fixed choice wins everywhere ("Noncontiguous I/O through PVFS",
// PAPERS.md): sieving wins dense patterns, vectored wins sparse ones,
// and the two-phase collective wins when ranks' pieces interleave so
// the union footprint coalesces though no single rank's view does —
// until link contention inverts that trade again. Options.Strategy and
// CollectiveOptions.Strategy expose the choice: StrategyVectored,
// StrategySieved and StrategyCollective force a path, the zero value
// keeps each layer's historical default, and StrategyAuto prices the
// candidate routes per operation with a cost model built from the
// modeled drive parameters (StoreCostModel) and the rank group's link
// model, picking the cheapest — one self-tuning knob where tuning
// previously meant picking fixed mechanisms per workload.
// TunedProfile and TunedOptions now set StrategyAuto.
// TestStrategyAutoWins enforces that Auto matches the best fixed
// strategy on every configuration of a density × rank-count ×
// link-bandwidth sweep and strictly beats each fixed strategy on at
// least one; `pariosim -scenario strategy` prints the sweep. The paper
// defaults are untouched: StrategyDefault keeps every pinned modeled
// time bit-identical (TestDefaultModelPinned).
//
// # Plan capture & replay
//
// Iterative checkpoints issue the SAME request lists every iteration
// with fresh payloads, yet each collective call used to rebuild its
// whole schedule from scratch — domain assignment, route choice, chunk
// windows, per-pair message shapes, device batch plans. Every
// Collective now carries a transparent schedule cache: the first call
// fingerprints the request lists (an FNV-1a hash plus an exact
// signature compare, so collisions cannot alias), builds and validates
// the plan once, and freezes it into an immutable schedule; subsequent
// calls with the same shape replay it, doing only buffer rebinding and
// payload packing. The cache is a small per-handle LRU
// (CollectiveOptions.PlanCache: 0 = default capacity 8, >0 sets the
// capacity, <0 disables), invalidated whenever the answer could change:
// Collective.SetOptions re-tunes a handle and flushes, and every
// interconnect reconfiguration (RankGroup.SetLink / SetBisection /
// SetBisectionPool / SetTopology) bumps a model epoch the cache
// stamps its entries against; Collective.InvalidateSchedules drops
// them by hand. Replay threads through every route — single-shot
// two-phase, vectored, sieved, the pipelined chunked schedule, and the
// nonblocking server path — and is invisible to the virtual world:
// modeled times, stats and probe traces are bit-identical cached or
// uncached (the win is host wall-clock and allocations, ≥2× and ≥3×
// per replayed iteration, enforced by TestPlanReplayWin on a 1024-rank
// × 64-iteration contended loop and tracked in CI by
// BENCH_replay.json). Collective.PlanCacheStats reports hits, misses,
// evictions and invalidations (CollectiveCacheStats);
// TestReplayDeterminism512 fences determinism, the differential
// harness's replay phases diff replayed iterations against fresh-plan
// and reference-model execution, and `pariosim -scenario replay`
// sweeps iterations × ranks cached vs uncached.
//
// Profiles bundle the knobs grown across all these layers:
// PaperProfile is the pinned 1989 model, TunedProfile the "modern
// defaults" (extents, SCAN scheduling with queue merging, a modeled
// interconnect, locality-aware chunked collectives), and
// NewProfiledMachine builds a machine under one. `pariosim -scenario
// profile [-profile tuned|paper]` compares them on the checkpoint
// scenario; TestTunedProfileWins enforces the tuned win.
//
// # Flight recorder
//
// The whole stack is threaded with an always-compiled, nil-default
// flight recorder (NewRecorder, re-exported from internal/probe):
// attach one to a machine with Machine.SetProbe and every layer records
// spans stamped with the virtual clock — engine dispatch counters, mpp
// exchange rounds and bisection-pool waits (rank groups launched via
// GoRanks attach automatically under their name), per-disk queue-wait
// vs service intervals, blockio merged batch runs, collective
// plan/exchange/access per chunk with causal parent links, and I/O
// server admission/wait/service per lane (IOServer.SetProbe). Because
// timestamps are virtual, recording never perturbs modeled time —
// every pinned result is bit-identical with tracing on — and two runs
// of one scenario export byte-identical traces. Export three ways:
// WriteChromeTrace emits Chrome trace-event JSON loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing with one named track per
// rank/device/lane; Recorder.UtilizationTable renders per-resource
// busy-interval unions; Recorder.Metrics().Table() snapshots the typed
// metrics registry (counters, pull gauges, histograms). With no
// recorder attached (the default) every hook is a nil-receiver no-op:
// zero work, zero allocations (BenchmarkTraceOverhead measures the
// delta). `pariosim -trace out.json -metrics` records any scenario;
// `parioctl trace out.json` summarizes a trace offline. Distinct from
// TraceRecorder, which captures the paper's per-record access events
// (Figure 1), not timing.
//
// # Execution model
//
// The library runs over a deterministic virtual-time engine (NewEngine):
// simulated processes are goroutines that the engine schedules one at a
// time, devices charge modeled seek/rotation/transfer delays, and
// results are bit-for-bit reproducible. Concurrent use of shared handles
// requires the engine. Single-goroutine use (tools, tests, format
// conversion) can instead pass a Wall context, under which devices
// complete instantly.
//
// # Simulation scalability
//
// Modeled time and wall-clock time are deliberately decoupled: what a
// scenario costs the simulated machine is fixed by the model, and the
// engine is built so that what it costs the host grows with actual
// activity, not with machine size. The engine keeps pending events in
// an indexed heap with in-place re-schedule and recycles process shells
// (goroutine + wake channel) across spawns; the exchange layer's sparse
// collectives (internal/mpp's AlltoallvSparse / SparseExchange) carry
// explicit message lists with by-reference payload delivery and pooled
// receive buffers, so an exchange round costs O(messages actually
// sent), not O(ranks²); the collective layer packs and scatters through
// the plan's participation indexes and pooled payload buffers. The
// sparse-exchange guarantee is exact: charging is computed from the
// same message and byte totals, between the same barriers, as the dense
// forms, so modeled results are bit-identical — only the wall-clock
// cost of producing them changes (TestDefaultModelPinned,
// TestEngineScaleWin and TestPipelinedDeterminism512 enforce this from
// three directions). A 4096-rank × 256-drive contended pipelined
// checkpoint simulates in well under a wall-clock second per modeled
// second; `pariosim -scenario scale` prints the sweep, and pariosim's
// -cpuprofile/-memprofile flags capture pprof profiles of the simulator
// itself.
//
// # Quickstart
//
//	machine := pario.NewMachine(4) // 4 drives, one volume, virtual time
//	f, _ := machine.Volume.Create(pario.Spec{
//	        Name: "results", Org: pario.OrgPartitioned,
//	        RecordSize: 4096, NumRecords: 1 << 14, Parts: 4,
//	})
//	machine.Go("writer-0", func(p *pario.Proc) {
//	        w, _ := pario.OpenPartWriter(f, 0, pario.DefaultOptions())
//	        // ... w.WriteRecord(p, rec) ...
//	        w.Close(p)
//	})
//	machine.Run()
//
// See examples/ for complete programs and internal/experiments for the
// paper's evaluation harness.
package pario

import (
	"fmt"
	"time"

	"repro/internal/blockio"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ioserver"
	"repro/internal/mpp"
	"repro/internal/pfs"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/volio"
)

// Re-exported fundamental types. The definitions (and detailed
// documentation) live in the internal packages; these aliases are the
// supported public surface.
type (
	// Context supplies time to blocking operations (virtual or wall).
	Context = sim.Context
	// Engine is the deterministic virtual-time scheduler.
	Engine = sim.Engine
	// Proc is a simulated process (implements Context).
	Proc = sim.Proc
	// Group joins spawned processes.
	Group = sim.Group
	// Wall is the no-simulation context for single-goroutine use.
	Wall = sim.Wall

	// Volume is a parallel file system over a device array.
	Volume = pfs.Volume
	// File is a parallel file's metadata handle.
	File = pfs.File
	// Spec holds file creation parameters.
	Spec = pfs.Spec
	// Organization is one of the paper's six file organizations.
	Organization = pfs.Organization
	// Placement selects the physical layout strategy.
	Placement = pfs.Placement
	// Category separates standard from specialized files.
	Category = pfs.Category

	// Options tunes an access method (buffering, read-ahead, tracing).
	Options = core.Options
	// StreamReader reads S/PS/IS views sequentially.
	StreamReader = core.StreamReader
	// StreamWriter writes S/PS/IS views sequentially.
	StreamWriter = core.StreamWriter
	// SelfSched is the shared SS handle.
	SelfSched = core.SelfSched
	// SelfSchedDirect is the §3.2 direct-access SS variant over GDA.
	SelfSchedDirect = core.SelfSchedDirect
	// Direct is the GDA handle.
	Direct = core.Direct
	// DirectPart is the PDA handle.
	DirectPart = core.DirectPart
	// GlobalReader is the conventional sequential read view (io.ReadSeeker).
	GlobalReader = core.GlobalReader
	// GlobalWriter is the conventional sequential write view (io.WriteCloser).
	GlobalWriter = core.GlobalWriter

	// Disk is one simulated direct-access storage device.
	Disk = device.Disk
	// DiskConfig parameterizes a Disk.
	DiskConfig = device.Config
	// Geometry is a disk's layout.
	Geometry = device.Geometry
	// Timing is a disk's service-time model.
	Timing = device.Timing
	// Sched selects a disk queue's scheduling discipline (FCFS or SCAN).
	Sched = device.Sched
	// Backend is a disk's page store; FileBackend keeps pages in a host
	// file so simulated volumes can exceed RAM.
	Backend = device.Backend
	// FileBackend stores disk pages in a host file.
	FileBackend = device.FileBackend

	// TraceRecorder captures per-record access events (Figure 1).
	TraceRecorder = trace.Recorder

	// Recorder is the flight recorder: virtual-clock spans plus a typed
	// metrics registry, nil-default across the whole stack (see the
	// "Flight recorder" section above).
	Recorder = probe.Recorder
	// Span is one recorded interval of virtual time on a trace track.
	Span = probe.Span
	// Metrics is the flight recorder's typed metrics registry
	// (counters, pull gauges, stats.Sample histograms).
	Metrics = probe.Metrics
	// TrackUsage summarizes one trace track's busy-interval union.
	TrackUsage = probe.TrackUsage

	// Vec is the scatter/gather request descriptor: a list of (logical
	// block range, buffer offset) segments moved by Set.ReadVec/WriteVec
	// with listio-style physical coalescing.
	Vec = blockio.Vec
	// VecSeg is one segment of a Vec.
	VecSeg = blockio.VecSeg
	// Run is a physically contiguous span of a layout, gather-capable
	// via its buffer segments.
	Run = blockio.Run
	// Seg maps one consecutive slice of a gather Run onto the caller's
	// buffer.
	Seg = blockio.Seg
	// Set binds a store, a layout and extent bases into logical-block
	// I/O (File.Set returns a file's Set).
	Set = blockio.Set
	// BatchItem is one file's contribution to a cross-file batch.
	BatchItem = blockio.BatchItem
	// BatchVec is a cross-file scatter/gather request list over Sets
	// sharing one device array, merged physically across files.
	BatchVec = blockio.BatchVec
	// BatchPlan is a BatchVec mapped, sorted and merged once and split
	// into issue windows (BatchVec.Plan) — the prepared form the
	// pipelined collective issues its per-chunk device requests through.
	BatchPlan = blockio.BatchPlan
	// Strategy selects how noncontiguous transfers execute: a forced
	// path, each layer's historical default (the zero value), or
	// per-operation cost-model selection (StrategyAuto). See the "Data
	// sieving & strategy selection" doc section.
	Strategy = blockio.Strategy
	// CostModel carries the modeled machine parameters strategy
	// decisions price transfers with (StoreCostModel derives the device
	// half from a volume's drives).
	CostModel = blockio.CostModel
	// SieveSpan is one device's covering span for a sieved transfer
	// (Set.SieveSpans plans them; Set.ReadVecSieved/WriteVecSieved
	// execute them).
	SieveSpan = blockio.SieveSpan

	// Rank is one process of a parallel program (GoRanks), with the
	// group collectives (Barrier, AlltoallvSparse, reductions).
	Rank = mpp.Proc
	// RankGroup is a parallel program's process group; SetLink and
	// SetBisection configure its modeled interconnect (per-process and
	// shared-pool), Traffic reports measured cross-link volume.
	RankGroup = mpp.Group
	// Bisection is a shared-link bandwidth pool — a reservation timeline
	// concurrent exchanges queue on. Share one between rank groups with
	// RankGroup.SetBisectionPool to model jobs contending for one
	// interconnect.
	Bisection = mpp.Bisection
	// FileGroup is an ordered set of files opened together for
	// collective access (Volume.OpenGroup / NewFileGroup).
	FileGroup = pfs.FileGroup
	// Collective is the two-phase collective-I/O handle: per-rank
	// request lists executed via aggregator file domains.
	Collective = collective.Collective
	// VecReq is one rank's scatter/gather request against one file of a
	// collective's group.
	VecReq = collective.VecReq
	// CollectiveOptions tunes a Collective (aggregator count,
	// locality-aware domain assignment, last-writer-wins overlaps,
	// schedule-cache capacity via PlanCache).
	CollectiveOptions = collective.Options
	// ExchangeStats reports a collective call's exchange split — bytes
	// moved over the interconnect vs bytes kept local on aggregating
	// ranks (Collective.LastStats).
	ExchangeStats = collective.ExchangeStats
	// CollectiveCacheStats is a handle's schedule-cache accounting —
	// hits, misses, evictions, invalidations, live entries
	// (Collective.PlanCacheStats; see "Plan capture & replay").
	CollectiveCacheStats = collective.CacheStats

	// IOServer is the I/O-service subsystem: dedicated server processes
	// own the device array and execute client jobs' request batches
	// under a QoS policy (NewIOServer, IOServer.AddJob / Start / Stop).
	IOServer = ioserver.Server
	// IOServerConfig sets the server's worker count and QoS policy.
	IOServerConfig = ioserver.Config
	// IOJob is one client job's request lane on an IOServer.
	IOJob = ioserver.Job
	// IOJobConfig sets a lane's QoS parameters (priority, fair-share
	// weight, bandwidth cap, admission queue depth).
	IOJobConfig = ioserver.JobConfig
	// IOJobStats is a lane's accounting snapshot: request counts, served
	// bytes, device busy time and latency percentiles.
	IOJobStats = ioserver.JobStats
	// IORequest is one submitted batch's completion ticket.
	IORequest = ioserver.Request
	// IOPolicy selects the server's scheduling policy.
	IOPolicy = ioserver.Policy
	// IOHandle is an in-flight nonblocking collective
	// (Collective.IWriteAll / IReadAll; Wait is collective, Test local).
	IOHandle = collective.Handle
)

// Organization constants (paper §3).
const (
	OrgSequential        = pfs.OrgSequential
	OrgPartitioned       = pfs.OrgPartitioned
	OrgInterleaved       = pfs.OrgInterleaved
	OrgSelfScheduled     = pfs.OrgSelfScheduled
	OrgGlobalDirect      = pfs.OrgGlobalDirect
	OrgPartitionedDirect = pfs.OrgPartitionedDirect
)

// Placement constants (paper §4).
const (
	PlaceAuto        = pfs.PlaceAuto
	PlaceStriped     = pfs.PlaceStriped
	PlacePartitioned = pfs.PlacePartitioned
	PlaceInterleaved = pfs.PlaceInterleaved
)

// Category constants (paper §2).
const (
	Standard    = pfs.Standard
	Specialized = pfs.Specialized
)

// Self-scheduled handle directions.
const (
	SSRead  = core.SSRead
	SSWrite = core.SSWrite
)

// Disk queue scheduling disciplines.
const (
	SchedFCFS = device.FCFS
	SchedSCAN = device.SCAN
)

// Access-strategy constants (Options.Strategy /
// CollectiveOptions.Strategy; see "Data sieving & strategy selection").
const (
	StrategyDefault    = blockio.StrategyDefault
	StrategyVectored   = blockio.StrategyVectored
	StrategySieved     = blockio.StrategySieved
	StrategyCollective = blockio.StrategyCollective
	StrategyAuto       = blockio.StrategyAuto
)

// StoreCostModel derives the device half of a strategy CostModel from a
// store's drive parameters (Volume.Store), for ranks concurrent
// accessors; the collective layer fills in the link half from the rank
// group automatically.
var StoreCostModel = blockio.StoreCostModel

// I/O server scheduling policies.
const (
	IOFIFO      = ioserver.FIFO
	IOFairShare = ioserver.FairShare
	IOPriority  = ioserver.Priority
)

// NewIOServer creates an I/O server (add job lanes with AddJob, then
// Start it on the engine; Stop drains and joins the workers).
var NewIOServer = ioserver.New

// Flight-recorder entry points (see the "Flight recorder" doc section).
var (
	// NewRecorder creates an empty flight recorder; attach it with
	// Machine.SetProbe (and IOServer.SetProbe for server lanes).
	NewRecorder = probe.New
	// WriteChromeTrace writes a recorder's spans as deterministic Chrome
	// trace-event JSON for Perfetto / chrome://tracing.
	WriteChromeTrace = probe.WriteChromeTrace
	// ReadChromeTrace parses trace-event JSON written by WriteChromeTrace
	// back into a Recorder for offline summarization.
	ReadChromeTrace = probe.ReadChromeTrace
)

// NewEngine returns a fresh virtual-time engine.
func NewEngine() *Engine { return sim.NewEngine() }

// NewWall returns a wall-clock context (no modeled delays).
func NewWall() *Wall { return sim.NewWall() }

// DefaultOptions is the paper-recommended access configuration: double
// buffering, one dedicated I/O process, early release.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewDisk builds a simulated drive (zero-value config fields default to
// the 1989 drive the paper assumes: ~16 ms average seek, 3600 RPM,
// 1.5 MB/s, 4 KiB blocks).
func NewDisk(cfg DiskConfig) *Disk { return device.New(cfg) }

// NewFileBackend creates a host-file page store for a disk (pass it in
// DiskConfig.Backend; remember to Close the disk).
func NewFileBackend(path string, blockSize int) (*FileBackend, error) {
	return device.NewFileBackend(path, blockSize)
}

// NewVolume formats a parallel file system over identical disks.
func NewVolume(disks []*Disk) (*Volume, error) {
	store, err := blockio.NewDirect(disks)
	if err != nil {
		return nil, err
	}
	return pfs.NewVolume(store), nil
}

// Access-method constructors (the paper's organizations, §3).
var (
	OpenReader            = core.OpenReader
	OpenWriter            = core.OpenWriter
	OpenPartReader        = core.OpenPartReader
	OpenPartWriter        = core.OpenPartWriter
	OpenInterleavedReader = core.OpenInterleavedReader
	OpenInterleavedWriter = core.OpenInterleavedWriter
	OpenSelfSched         = core.OpenSelfSched
	OpenSelfSchedDirect   = core.OpenSelfSchedDirect
	OpenDirect            = core.OpenDirect
	OpenDirectPart        = core.OpenDirectPart
	OpenGlobalReader      = core.OpenGlobalReader
	OpenGlobalWriter      = core.OpenGlobalWriter
)

// OpenBlockRangeReader opens a sequential read view over the contiguous
// paper-block range [first, end) — an ad-hoc PS-style partition
// independent of the file's own partition table, the substrate for the
// §5 alternate views (package convert builds on it). It is not one of
// the paper's six organizations, hence its separate listing here.
var OpenBlockRangeReader = core.OpenBlockRangeReader

// Collective I/O entry points: OpenCollective builds the two-phase
// handle over a FileGroup (Volume.OpenGroup or NewFileGroup);
// RecordRangeReq is the record-list convenience for building a rank's
// requests.
var (
	OpenCollective = collective.Open
	NewFileGroup   = pfs.NewFileGroup
	RecordRangeReq = collective.RecordRangeReq
	NewBisection   = mpp.NewBisection
)

// SaveVolume persists a volume and its devices to a host directory;
// LoadVolume restores it (see cmd/parioctl).
var (
	SaveVolume = volio.Save
	LoadVolume = volio.Load
)

// Profile bundles the cross-layer tuning knobs into one named
// configuration, so tools and applications can switch between the
// paper's model and the grown stack's recommendations in one place.
// PaperProfile is the 1989 baseline every pinned test enforces;
// TunedProfile is the ROADMAP's "modern defaults".
type Profile struct {
	Name string
	// Access tunes the stream/direct access methods (core.Options).
	Access Options
	// Sched and MergeQueued configure every drive's queue.
	Sched       Sched
	MergeQueued bool
	// LinkMsg/LinkBytes/Bisection configure a rank group's modeled
	// interconnect (zero values leave the respective model off).
	LinkMsg   time.Duration
	LinkBytes float64
	Bisection float64
	// Collective tunes collective handles opened under the profile.
	Collective CollectiveOptions
}

// PaperProfile is the paper's configuration: block-at-a-time transfers,
// FCFS queues, a free interconnect, single-shot round-robin collectives.
// Machines and collectives built from it keep the paper's modeled
// shapes bit-identical.
func PaperProfile() Profile {
	return Profile{Name: "paper", Access: DefaultOptions()}
}

// TunedProfile is the "modern defaults" profile: 32-block extents
// through four buffers, SCAN disk scheduling with queue merging, a
// modeled interconnect (100 MB/s links, 10 µs per message, a 50 MB/s
// shared bisection pool — generous late-era numbers that make
// communication real but still cheaper than seeks), and collectives
// with locality-aware aggregator domains pipelined through 1 MiB
// chunks under per-call strategy selection (StrategyAuto — see "Data
// sieving & strategy selection"). Every knob is one of the opt-in
// mechanisms grown since PR 1;
// TestTunedProfileWins enforces that the bundle beats PaperProfile on
// the checkpoint scenario even though the paper's interconnect is free.
func TunedProfile() Profile {
	return Profile{
		Name:        "tuned",
		Access:      core.TunedOptions(),
		Sched:       SchedSCAN,
		MergeQueued: true,
		LinkMsg:     10 * time.Microsecond,
		LinkBytes:   100e6,
		Bisection:   50e6,
		Collective: CollectiveOptions{
			Locality:   true,
			ChunkBytes: 1 << 20,
			Strategy:   StrategyAuto,
		},
	}
}

// ConfigureRanks applies the profile's interconnect model to a rank
// group (call before the simulation runs the group's collectives).
func (pf Profile) ConfigureRanks(g *RankGroup) {
	if pf.LinkMsg != 0 || pf.LinkBytes != 0 {
		g.SetLink(pf.LinkMsg, pf.LinkBytes)
	}
	if pf.Bisection > 0 {
		g.SetBisection(pf.Bisection)
	}
}

// Machine bundles an engine, a homogeneous drive array and one volume —
// the typical experiment/application setup.
type Machine struct {
	Engine *Engine
	Disks  []*Disk
	Volume *Volume

	rec *Recorder // flight recorder (nil: detached)
}

// SetProbe attaches a flight recorder across the machine: the engine's
// dispatch metrics, every disk's service/queue-wait tracks, and the
// volume store's batch track. Rank groups launched by GoRanks after
// this call attach automatically under their name prefix. Pass nil to
// detach. Recording reads the virtual clock only, so modeled times are
// bit-identical with and without a recorder.
func (m *Machine) SetProbe(r *Recorder) {
	m.rec = r
	m.Engine.SetProbe(r)
	for _, d := range m.Disks {
		d.SetProbe(r)
	}
	if direct, ok := m.Volume.Store().(*blockio.Direct); ok {
		direct.SetProbe(r)
	}
}

// Probe reports the machine's attached flight recorder (nil when
// detached).
func (m *Machine) Probe() *Recorder { return m.rec }

// NewMachine builds a virtual-time machine with n default 1989 drives.
func NewMachine(n int) *Machine {
	return NewProfiledMachine(n, PaperProfile())
}

// NewProfiledMachine builds a virtual-time machine with n default 1989
// drives whose queues follow the profile (scheduling discipline, queue
// merging). The profile's access and collective options are for the
// caller to pass when opening handles; ConfigureRanks applies its
// interconnect to rank groups.
func NewProfiledMachine(n int, pf Profile) *Machine {
	e := sim.NewEngine()
	disks := make([]*Disk, n)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:        fmt.Sprintf("d%d", i),
			Engine:      e,
			Sched:       pf.Sched,
			MergeQueued: pf.MergeQueued,
		})
	}
	vol, err := NewVolume(disks)
	if err != nil {
		// Unreachable: identical fresh disks always form a valid store.
		panic(err)
	}
	return &Machine{Engine: e, Disks: disks, Volume: vol}
}

// Go launches a simulated process.
func (m *Machine) Go(name string, fn func(p *Proc)) { m.Engine.Go(name, fn) }

// GoRanks launches an n-rank parallel program on the machine and returns
// its group (e.g. to configure the interconnect with SetLink before
// Run). The ranks are joined by Run like any other processes.
func (m *Machine) GoRanks(n int, name string, fn func(r *Rank)) *RankGroup {
	g, _ := mpp.Run(m.Engine, n, name, fn)
	if m.rec != nil {
		g.SetProbe(m.rec, name)
	}
	return g
}

// Run executes the simulation to completion and returns the engine error
// (nil, or a deadlock report).
func (m *Machine) Run() error { return m.Engine.Run() }
