package pario_test

import (
	"encoding/binary"
	"fmt"
	"io"
	"testing"
	"time"

	pario "repro"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/mpp"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stripe"
	"repro/internal/workload"
)

// TestIntegrationParityStoreFullStack runs the whole stack — engine,
// parity store, volume, PS access methods — through a mid-run drive
// failure: writers complete, a drive dies, and readers still see every
// record via degraded reads.
func TestIntegrationParityStoreFullStack(t *testing.T) {
	e := sim.NewEngine()
	geom := device.Geometry{BlockSize: 4096, BlocksPerCyl: 16, Cylinders: 64}
	disks := make([]*device.Disk, 5)
	for i := range disks {
		disks[i] = device.New(device.Config{Name: fmt.Sprintf("d%d", i), Geometry: geom, Engine: e})
	}
	par, err := stripe.NewParity(disks, true)
	if err != nil {
		t.Fatal(err)
	}
	vol := pfs.NewVolume(par)
	const parts = 4
	const records = 128
	f, err := vol.Create(pfs.Spec{
		Name: "data", Org: pfs.OrgPartitioned, RecordSize: 4096,
		NumRecords: records, Parts: parts,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("driver", func(p *sim.Proc) {
		var g sim.Group
		for w := 0; w < parts; w++ {
			wid := w
			g.Spawn(p.Engine(), "writer", func(c *sim.Proc) {
				wr, err := core.OpenPartWriter(f, wid, core.DefaultOptions())
				if err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 4096)
				first, end := f.PartRecordRange(wid)
				for r := first; r < end; r++ {
					workload.Record(buf, 0xF00D, r)
					if _, err := wr.WriteRecord(c, buf); err != nil {
						t.Error(err)
						return
					}
				}
				if err := wr.Close(c); err != nil {
					t.Error(err)
				}
			})
		}
		g.Wait(p)
		// Disaster strikes a data drive.
		par.PhysDisk(1).Fail()
		// All partitions remain readable (reconstruction on the fly).
		var g2 sim.Group
		for w := 0; w < parts; w++ {
			wid := w
			g2.Spawn(p.Engine(), "reader", func(c *sim.Proc) {
				rd, err := core.OpenPartReader(f, wid, core.DefaultOptions())
				if err != nil {
					t.Error(err)
					return
				}
				defer rd.Close(c)
				n := 0
				for {
					data, rec, err := rd.ReadRecord(c)
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Errorf("degraded read: %v", err)
						return
					}
					if err := workload.CheckRecord(data, 0xF00D, rec); err != nil {
						t.Error(err)
						return
					}
					n++
				}
				if n != records/parts {
					t.Errorf("part %d read %d records", wid, n)
				}
			})
		}
		g2.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationExperimentDeterminism re-runs an experiment and demands
// byte-identical tables — the reproducibility promise of the virtual
// engine across the whole stack.
func TestIntegrationExperimentDeterminism(t *testing.T) {
	for _, id := range []string{"e2", "e5", "e7"} {
		a, err := experiments.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := experiments.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("experiment %s not deterministic:\n%s\nvs\n%s", id, a.String(), b.String())
		}
	}
}

// TestIntegrationConvertChain converts PS -> IS -> (global) and checks
// the data survives both conversions.
func TestIntegrationConvertChain(t *testing.T) {
	disks := make([]*pario.Disk, 4)
	for i := range disks {
		disks[i] = pario.NewDisk(pario.DiskConfig{Name: fmt.Sprintf("d%d", i)})
	}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		t.Fatal(err)
	}
	ctx := pario.NewWall()
	ps, err := vol.Create(pario.Spec{
		Name: "ps", Org: pario.OrgPartitioned, RecordSize: 512,
		NumRecords: 256, Parts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := pario.OpenWriter(ps, pario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for r := int64(0); r < 256; r++ {
		workload.Record(buf, 0xBEEF, r)
		if _, err := w.WriteRecord(ctx, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	is, err := convert.ToOrganization(ctx, vol, ps, "is", pario.OrgInterleaved, 4, pario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := convert.ToOrganization(ctx, vol, is, "ss", pario.OrgSelfScheduled, 1, pario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := pario.OpenGlobalReader(ss, ctx)
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 256; r++ {
		if err := workload.CheckRecord(all[r*512:(r+1)*512], 0xBEEF, r); err != nil {
			t.Fatalf("after two conversions: %v", err)
		}
	}
}

// TestIntegrationMPPProgram runs an mpp process group (ranks, barrier,
// reduction) whose phases use an IS parallel file — the paper's wrapped
// matrix pattern with collective synchronization.
func TestIntegrationMPPProgram(t *testing.T) {
	e := sim.NewEngine()
	disks := make([]*device.Disk, 4)
	for i := range disks {
		disks[i] = device.New(device.Config{Name: fmt.Sprintf("d%d", i), Engine: e})
	}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		t.Fatal(err)
	}
	const procs = 4
	const rows = 32
	f, err := vol.Create(pfs.Spec{
		Name: "m", Org: pfs.OrgInterleaved, RecordSize: 512,
		BlockRecords: 1, NumRecords: rows, Parts: procs,
	})
	if err != nil {
		t.Fatal(err)
	}
	var grandTotal float64
	_, join := mpp.Run(e, procs, "rank", func(p *mpp.Proc) {
		// Phase 1: every rank writes its wrapped rows.
		w, err := core.OpenInterleavedWriter(f, p.Rank(), p.Size(), core.DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 512)
		for row := p.Rank(); row < rows; row += p.Size() {
			binary.BigEndian.PutUint64(buf, uint64(row))
			if _, err := w.WriteRecord(p, buf); err != nil {
				t.Error(err)
				return
			}
		}
		if err := w.Close(p); err != nil {
			t.Error(err)
		}
		p.Barrier()
		// Phase 2: every rank reads its rows back and reduces a sum.
		r, err := core.OpenInterleavedReader(f, p.Rank(), p.Size(), core.DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		local := 0.0
		for {
			data, _, err := r.ReadRecord(p)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
			local += float64(binary.BigEndian.Uint64(data))
		}
		_ = r.Close(p)
		total := p.ReduceSum(local)
		if p.Rank() == 0 {
			grandTotal = total
		}
	})
	e.Go("join", func(p *sim.Proc) { join.Wait(p) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := float64(rows * (rows - 1) / 2); grandTotal != want {
		t.Fatalf("reduced sum %v, want %v", grandTotal, want)
	}
}

// TestIntegrationSSWriteThenRead produces a file with self-scheduled
// writers and consumes it with self-scheduled readers, a full SS
// pipeline under the engine.
func TestIntegrationSSWriteThenRead(t *testing.T) {
	m := pario.NewMachine(4)
	const records = 96
	f, err := m.Volume.Create(pario.Spec{
		Name: "ss", Org: pario.OrgSelfScheduled, RecordSize: 4096, NumRecords: records,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Go("driver", func(p *pario.Proc) {
		wh, err := pario.OpenSelfSched(f, pario.SSWrite, pario.DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		var g pario.Group
		for w := 0; w < 3; w++ {
			g.Spawn(p.Engine(), "producer", func(c *pario.Proc) {
				buf := make([]byte, 4096)
				for {
					// The record index is assigned at claim time; write a
					// self-describing payload afterwards via a second pass
					// is impossible, so tag with a constant checksum.
					for i := range buf {
						buf[i] = 0x5a
					}
					if _, err := wh.WriteNext(c, buf); err != nil {
						return
					}
					c.Sleep(time.Millisecond)
				}
			})
		}
		g.Wait(p)
		if err := wh.Close(p); err != nil {
			t.Error(err)
		}
		rh, err := pario.OpenSelfSched(f, pario.SSRead, pario.DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		count := 0
		var g2 pario.Group
		for w := 0; w < 5; w++ {
			g2.Spawn(p.Engine(), "consumer", func(c *pario.Proc) {
				buf := make([]byte, 4096)
				for {
					if _, err := rh.ReadNext(c, buf); err != nil {
						return
					}
					if buf[0] != 0x5a || buf[4095] != 0x5a {
						t.Error("corrupt record through SS pipeline")
						return
					}
					count++
				}
			})
		}
		g2.Wait(p)
		if err := rh.Close(p); err != nil {
			t.Error(err)
		}
		if count != records {
			t.Errorf("consumed %d of %d", count, records)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationVolumeOnMirrorPersists mixes redundancy with access
// methods: a shadowed volume serves reads with a failed primary, and the
// per-drive statistics show writes really hit both drives.
func TestIntegrationVolumeOnMirrorPersists(t *testing.T) {
	e := sim.NewEngine()
	mk := func(prefix string) []*device.Disk {
		ds := make([]*device.Disk, 2)
		for i := range ds {
			ds[i] = device.New(device.Config{Name: fmt.Sprintf("%s%d", prefix, i), Engine: e})
		}
		return ds
	}
	prim, shad := mk("p"), mk("s")
	mir, err := stripe.NewMirror(prim, shad)
	if err != nil {
		t.Fatal(err)
	}
	vol := pfs.NewVolume(mir)
	f, err := vol.Create(pfs.Spec{Name: "d", RecordSize: 4096, NumRecords: 32})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("driver", func(p *sim.Proc) {
		w, err := core.OpenWriter(f, core.DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		for r := int64(0); r < 32; r++ {
			workload.Record(buf, 7, r)
			if _, err := w.WriteRecord(p, buf); err != nil {
				t.Error(err)
				return
			}
		}
		if err := w.Close(p); err != nil {
			t.Error(err)
		}
		prim[0].Fail()
		rd, err := core.OpenReader(f, core.DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		for {
			data, rec, err := rd.ReadRecord(p)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Errorf("read with failed primary: %v", err)
				return
			}
			if err := workload.CheckRecord(data, 7, rec); err != nil {
				t.Error(err)
			}
		}
		_ = rd.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range prim {
		pw := prim[i].Stats().BytesWritten
		sw := shad[i].Stats().BytesWritten
		if pw == 0 || pw != sw {
			t.Fatalf("drive %d: primary wrote %d, shadow wrote %d (must match)", i, pw, sw)
		}
	}
}

// TestIntegrationSharedGDAWriters hammers one shared Direct handle from
// four processes with interleaved reads and writes over disjoint record
// sets, through a small cache that forces constant eviction; the final
// state must be exact.
func TestIntegrationSharedGDAWriters(t *testing.T) {
	e := sim.NewEngine()
	disks := make([]*device.Disk, 2)
	for i := range disks {
		disks[i] = device.New(device.Config{Name: fmt.Sprintf("d%d", i), Engine: e})
	}
	vol, err := pario.NewVolume(disks)
	if err != nil {
		t.Fatal(err)
	}
	const records = 128
	f, err := vol.Create(pfs.Spec{Name: "gda", Org: pfs.OrgGlobalDirect, RecordSize: 512, NumRecords: records})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CacheBlocks = 2 // constant eviction pressure
	d, err := core.OpenDirect(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.Go("driver", func(p *sim.Proc) {
		var g sim.Group
		for w := 0; w < 4; w++ {
			wid := w
			g.Spawn(p.Engine(), "writer", func(c *sim.Proc) {
				rng := sim.NewRNG(uint64(wid) + 1)
				buf := make([]byte, 512)
				// Each worker owns records ≡ wid (mod 4); random order,
				// each written twice with a read-back in between.
				recs := []int64{}
				for r := int64(wid); r < records; r += 4 {
					recs = append(recs, r)
				}
				for pass := 0; pass < 2; pass++ {
					for _, i := range rng.Perm(len(recs)) {
						r := recs[i]
						workload.Record(buf, uint64(pass+1), r)
						if err := d.WriteRecordAt(c, r, buf); err != nil {
							t.Error(err)
							return
						}
						if err := d.ReadRecordAt(c, r, buf); err != nil {
							t.Error(err)
							return
						}
						if err := workload.CheckRecord(buf, uint64(pass+1), r); err != nil {
							t.Errorf("read-back: %v", err)
							return
						}
					}
				}
			})
		}
		g.Wait(p)
		if err := d.Close(p); err != nil {
			t.Error(err)
		}
		// Final state: every record carries pass-2 data.
		rd, err := core.OpenReader(f, core.DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		defer rd.Close(p)
		for {
			data, rec, err := rd.ReadRecord(p)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
			if err := workload.CheckRecord(data, 2, rec); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
