// Pipelined-collective acceptance: on a large contended checkpoint, the
// chunked two-phase schedule (CollectiveOptions.ChunkBytes) must beat
// the single-shot collective by ≥1.3× modeled time — in a link-bound
// variant (exchange the larger phase) and a disk-bound one (device
// access the larger phase) — with LastStats showing genuinely
// concurrent exchange and access. These are the ISSUE 5 acceptance
// numbers, enforced so they cannot regress.
//
// The single-shot schedule is a hard barrier: while the ~14.7 MB
// exchange crosses the shared bisection pool the drives idle, and while
// the aggregators' batches stream the drives the link idles, so the
// total is exchange + access. The pipelined schedule cuts each
// 1024-block file domain into 256-block chunks and exchanges chunk k+1
// while chunk k is in the drives: the total approaches max(exchange,
// access) plus one pipeline fill, at the price of per-chunk request
// overhead and a bounded 2-chunk staging buffer per aggregator.
package pario_test

import (
	"testing"
	"time"

	pario "repro"
)

const (
	pipeRanks   = 8
	pipeRecords = 4096 // 4 KiB records = fs blocks, unit-1 declustered
)

// pipeResult is one measured checkpoint write.
type pipeResult struct {
	elapsed  time.Duration
	requests int64
	stats    pario.ExchangeStats
	bytes    int64
}

// runPipelinedCheckpoint writes the 8-rank strided checkpoint over 4
// default 1989 drives through a collective with the given chunking, on
// a contended interconnect (100 MB/s per-process links sharing a
// bisection pool of the given bandwidth), and verifies the landed
// bytes.
func runPipelinedCheckpoint(tb testing.TB, chunkBytes int64, bisection float64) pipeResult {
	tb.Helper()
	m := pario.NewMachine(4)
	m.SetProbe(pario.NewRecorder()) // live recorder: must not perturb modeled time
	f, err := m.Volume.Create(pario.Spec{
		Name: "ckpt", Org: pario.OrgGlobalDirect,
		RecordSize: 4096, BlockRecords: 1, NumRecords: pipeRecords,
		Placement: pario.PlaceStriped, StripeUnitFS: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	group, err := m.Volume.OpenGroup("ckpt")
	if err != nil {
		tb.Fatal(err)
	}
	col, err := pario.OpenCollective(group, pipeRanks, pario.CollectiveOptions{ChunkBytes: chunkBytes})
	if err != nil {
		tb.Fatal(err)
	}
	rg := m.GoRanks(pipeRanks, "rank", func(r *pario.Rank) {
		rank := int64(r.Rank())
		var vec pario.Vec
		var off int64
		for b := rank; b < pipeRecords; b += pipeRanks {
			vec = append(vec, pario.VecSeg{Block: b, N: 1, BufOff: off})
			off += 4096
		}
		buf := make([]byte, off)
		for i, sg := range vec {
			buf[int64(i)*4096] = byte(sg.Block)
			buf[int64(i)*4096+1] = byte(sg.Block >> 8)
		}
		if err := col.WriteAll(r, []pario.VecReq{{File: 0, Vec: vec}}, buf); err != nil {
			tb.Errorf("rank %d: %v", rank, err)
		}
	})
	rg.SetLink(10*time.Microsecond, 100e6)
	rg.SetBisection(bisection)
	if err := m.Run(); err != nil {
		tb.Fatal(err)
	}
	var res pipeResult
	res.elapsed = m.Engine.Now()
	res.stats = col.LastStats()
	res.bytes = pipeRecords * 4096
	for _, d := range m.Disks {
		res.requests += d.Stats().Requests()
	}
	ctx := pario.NewWall()
	blk := make([]byte, 4096)
	for b := int64(0); b < pipeRecords; b++ {
		if err := f.Set().ReadBlock(ctx, b, blk); err != nil {
			tb.Fatal(err)
		}
		if blk[0] != byte(b) || blk[1] != byte(b>>8) {
			tb.Fatalf("block %d corrupt after checkpoint (chunk=%d)", b, chunkBytes)
		}
	}
	return res
}

// TestPipelineWin enforces the acceptance criteria in both regimes:
// ≥1.3× better modeled time for the chunked schedule, nonzero
// exchange/access overlap in its stats, zero overlap and identical byte
// split for the single-shot baseline.
func TestPipelineWin(t *testing.T) {
	const chunk = 256 * 4096 // 256-block chunks of each 1024-block domain (4 rounds)
	for _, tc := range []struct {
		name      string
		bisection float64
	}{
		// ~14.7 MB crosses the link: at 3.5 MB/s the exchange (~4.3 s)
		// outweighs the ~2.9 s of device streaming; at 6 MB/s (~2.5 s)
		// the drives dominate.
		{"link-bound", 3.5e6},
		{"disk-bound", 6e6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := runPipelinedCheckpoint(t, 0, tc.bisection)
			piped := runPipelinedCheckpoint(t, chunk, tc.bisection)
			ratio := serial.elapsed.Seconds() / piped.elapsed.Seconds()
			t.Logf("elapsed %v -> %v (%.2fx; %.2f -> %.2f MB/s)",
				serial.elapsed, piped.elapsed, ratio,
				float64(serial.bytes)/1e6/serial.elapsed.Seconds(),
				float64(piped.bytes)/1e6/piped.elapsed.Seconds())
			t.Logf("requests %d -> %d; piped exchange %v, access %v, overlap %v; link idle %.0f%% -> %.0f%%",
				serial.requests, piped.requests,
				piped.stats.ExchangeTime, piped.stats.AccessTime, piped.stats.Overlap,
				100*(1-serial.stats.ExchangeTime.Seconds()/serial.elapsed.Seconds()),
				100*(1-piped.stats.ExchangeTime.Seconds()/piped.elapsed.Seconds()))
			if ratio < 1.3 {
				t.Errorf("modeled time improvement %.2fx < 1.3x", ratio)
			}
			if serial.stats.Overlap != 0 {
				t.Errorf("single-shot write reported overlap %v, want none", serial.stats.Overlap)
			}
			if piped.stats.Overlap <= 0 {
				t.Errorf("pipelined stats report no exchange/access overlap: %+v", piped.stats)
			}
			if !serial.stats.SameBytes(piped.stats) {
				t.Errorf("schedules moved different bytes: %+v vs %+v", serial.stats, piped.stats)
			}
		})
	}
}

// BenchmarkPipelinedCheckpoint tracks the pipelined-collective
// trajectory: modeled MB/s and exchange/access overlap for the
// single-shot and chunked schedules on the link-bound checkpoint.
func BenchmarkPipelinedCheckpoint(b *testing.B) {
	for _, mode := range []struct {
		name  string
		chunk int64
	}{{"single-shot", 0}, {"pipelined", 256 * 4096}} {
		b.Run(mode.name, func(b *testing.B) {
			var res pipeResult
			for i := 0; i < b.N; i++ {
				res = runPipelinedCheckpoint(b, mode.chunk, 3.5e6)
			}
			b.ReportMetric(float64(res.bytes)/1e6/res.elapsed.Seconds(), "vMB/s")
			b.ReportMetric(res.stats.Overlap.Seconds(), "overlap-s")
			b.ReportMetric(float64(res.requests), "requests")
		})
	}
}
