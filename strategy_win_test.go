// Strategy-selection acceptance: StrategyAuto must match the best fixed
// access strategy — vectored, sieved, or two-phase collective — on EVERY
// configuration of a density × rank-count × link-bandwidth sweep, and
// strictly beat each fixed strategy on at least one configuration. This
// is the ISSUE 9 tentpole criterion: no fixed choice wins everywhere
// ("Noncontiguous I/O through PVFS"), so the cost model has to earn its
// keep on each workload shape where a different mechanism dominates:
//
//   - dense: each rank writes every other block of its own contiguous
//     device partition — half the span is holes no other rank fills, so
//     sieving's two covering-span requests beat one request per piece
//     (vectored) and beat aggregation, which cannot coalesce holes away.
//   - sparse: long runs separated by long holes — vectored's few
//     requests beat moving the holes (sieved) and beat paying exchange
//     traffic for no coalescing gain (collective).
//   - interleaved: ranks' single-block pieces interleave on each device,
//     so the union footprint is dense though no rank's view is — the
//     two-phase exchange wins on a fast link, and a congested link
//     inverts the trade back to independent sieving.
//
// Every strategy must also land the identical bytes (the patterns are
// rank-disjoint), which the sweep checks per configuration.
package pario_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	pario "repro"
)

// strategySweepBlocks is the file size of every sweep configuration, in
// 4 KiB blocks, over 4 default 1989 drives.
const (
	strategySweepBlocks = 1024
	strategySweepDisks  = 4
)

// strategySweepConfig is one cell of the density × rank-count ×
// link-bandwidth sweep.
type strategySweepConfig struct {
	pattern   string // "dense", "sparse", "interleaved"
	ranks     int
	congested bool
}

// name is the sub-test / benchmark label.
func (c strategySweepConfig) name() string {
	link := "fast"
	if c.congested {
		link = "congested"
	}
	return fmt.Sprintf("%s/r%d/%s", c.pattern, c.ranks, link)
}

// strategySweepConfigs enumerates the full sweep.
func strategySweepConfigs() []strategySweepConfig {
	var cfgs []strategySweepConfig
	for _, pattern := range []string{"dense", "sparse", "interleaved"} {
		for _, ranks := range []int{4, 8} {
			for _, congested := range []bool{false, true} {
				cfgs = append(cfgs, strategySweepConfig{pattern, ranks, congested})
			}
		}
	}
	return cfgs
}

// strategyPatternVec builds one rank's write descriptor for the
// configuration's access pattern. Patterns are block-disjoint across
// ranks.
func strategyPatternVec(cfg strategySweepConfig, rank int) pario.Vec {
	var vec pario.Vec
	var off int64
	add := func(b, n int64) {
		vec = append(vec, pario.VecSeg{Block: b, N: n, BufOff: off})
		off += n * 4096
	}
	slice := int64(strategySweepBlocks / cfg.ranks)
	base := int64(rank) * slice
	switch cfg.pattern {
	case "dense": // every other block of the rank's partition slice
		for i := int64(0); i < slice/2; i++ {
			add(base+2*i, 1)
		}
	case "sparse": // 8-block runs every 64 blocks of the slice
		for b := int64(0); b+8 <= slice; b += 64 {
			add(base+b, 8)
		}
	case "interleaved": // blocks ≡ rank (mod ranks), file-wide
		for b := int64(rank); b < strategySweepBlocks; b += int64(cfg.ranks) {
			add(b, 1)
		}
	}
	return vec
}

// strategySweepResult is one measured (configuration, strategy) run.
type strategySweepResult struct {
	elapsed time.Duration
	route   string // route the collective took ("two-phase", ...)
	image   []byte // final file bytes (identical across strategies)
}

// runStrategySweep executes one configuration under one strategy: a
// rank-disjoint collective write over a fresh 4-drive machine, returning
// the modeled elapsed time, the route taken and the resulting file
// image. Dense and sparse patterns use a partitioned file (each rank's
// slice physically contiguous on one device, so its holes are real
// on-device holes); the interleaved pattern uses a unit-1 declustered
// file, the layout whose rank views fragment but whose union coalesces.
func runStrategySweep(tb testing.TB, cfg strategySweepConfig, strat pario.Strategy) strategySweepResult {
	tb.Helper()
	m := pario.NewMachine(strategySweepDisks)
	spec := pario.Spec{
		Name: "sweep", RecordSize: 4096, BlockRecords: 1,
		NumRecords: strategySweepBlocks,
	}
	if cfg.pattern == "interleaved" {
		spec.Org = pario.OrgGlobalDirect
		spec.Placement = pario.PlaceStriped
		spec.StripeUnitFS = 1
	} else {
		spec.Org = pario.OrgPartitioned
		spec.Parts = strategySweepDisks
	}
	f, err := m.Volume.Create(spec)
	if err != nil {
		tb.Fatal(err)
	}
	group, err := m.Volume.OpenGroup("sweep")
	if err != nil {
		tb.Fatal(err)
	}
	col, err := pario.OpenCollective(group, cfg.ranks, pario.CollectiveOptions{Strategy: strat})
	if err != nil {
		tb.Fatal(err)
	}
	rg := m.GoRanks(cfg.ranks, "rank", func(r *pario.Rank) {
		vec := strategyPatternVec(cfg, r.Rank())
		var total int64
		for _, sg := range vec {
			total += sg.N
		}
		buf := make([]byte, total*4096)
		for _, sg := range vec {
			for k := int64(0); k < sg.N; k++ {
				blk := buf[sg.BufOff+k*4096 : sg.BufOff+(k+1)*4096]
				for j := range blk {
					blk[j] = byte((sg.Block+k)*37 + int64(j)*11 + 5)
				}
			}
		}
		if err := col.WriteAll(r, []pario.VecReq{{File: 0, Vec: vec}}, buf); err != nil {
			tb.Errorf("rank %d: %v", r.Rank(), err)
		}
	})
	if cfg.congested {
		rg.SetLink(100*time.Microsecond, 2e6)
		rg.SetBisection(1e6)
	} else {
		rg.SetLink(10*time.Microsecond, 100e6)
	}
	if err := m.Run(); err != nil {
		tb.Fatal(err)
	}
	img := make([]byte, strategySweepBlocks*4096)
	if err := f.Set().ReadVec(pario.NewWall(), pario.Vec{{Block: 0, N: strategySweepBlocks}}, img); err != nil {
		tb.Fatal(err)
	}
	return strategySweepResult{elapsed: m.Engine.Now(), route: col.LastRoute(), image: img}
}

// strategyFixed is every fixed strategy Auto competes against.
var strategyFixed = []struct {
	name  string
	strat pario.Strategy
}{
	{"vectored", pario.StrategyVectored},
	{"sieved", pario.StrategySieved},
	{"collective", pario.StrategyCollective},
}

// TestStrategyAutoWins enforces the tentpole acceptance criteria: on
// every sweep configuration Auto's modeled time is within 5% of the best
// fixed strategy's (it normally picks that strategy's exact route, so
// the times are identical; the slack covers the estimate nature of the
// cost model), and for each fixed strategy there is at least one
// configuration where Auto is strictly faster. All four runs of a
// configuration must land byte-identical file images.
func TestStrategyAutoWins(t *testing.T) {
	beats := make(map[string]bool)
	for _, cfg := range strategySweepConfigs() {
		cfg := cfg
		t.Run(cfg.name(), func(t *testing.T) {
			auto := runStrategySweep(t, cfg, pario.StrategyAuto)
			best := time.Duration(0)
			for _, fs := range strategyFixed {
				res := runStrategySweep(t, cfg, fs.strat)
				t.Logf("%-10s %12v (route %s)", fs.name, res.elapsed, res.route)
				if !bytes.Equal(res.image, auto.image) {
					t.Errorf("%s image differs from auto image", fs.name)
				}
				if best == 0 || res.elapsed < best {
					best = res.elapsed
				}
				if auto.elapsed < res.elapsed {
					beats[fs.name] = true
				}
			}
			t.Logf("%-10s %12v (route %s)", "auto", auto.elapsed, auto.route)
			if float64(auto.elapsed) > float64(best)/0.95 {
				t.Errorf("auto %v is worse than 0.95x the best fixed strategy (%v)", auto.elapsed, best)
			}
		})
	}
	for _, fs := range strategyFixed {
		if !beats[fs.name] {
			t.Errorf("auto never strictly beat the fixed %s strategy on any configuration", fs.name)
		}
	}
}

// BenchmarkStrategySweep reports the whole sweep — modeled MB/s per
// (configuration, strategy) — as the CI trajectory artifact
// (BENCH_strategy.json).
func BenchmarkStrategySweep(b *testing.B) {
	for _, cfg := range strategySweepConfigs() {
		for _, fs := range append(strategyFixed, struct {
			name  string
			strat pario.Strategy
		}{"auto", pario.StrategyAuto}) {
			b.Run(cfg.name()+"/"+fs.name, func(b *testing.B) {
				var res strategySweepResult
				var bytes int64
				for i := 0; i < b.N; i++ {
					res = runStrategySweep(b, cfg, fs.strat)
				}
				for _, sg := range strategyPatternVec(cfg, 0) {
					bytes += sg.N * 4096
				}
				bytes *= int64(cfg.ranks)
				b.ReportMetric(float64(bytes)/1e6/res.elapsed.Seconds(), "vMB/s")
			})
		}
	}
}
